module Clock = Repro_sim.Clock

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value
type phase = B | E | I | X

type event = {
  ph : phase;
  ev_name : string;
  span : int;
  parent : int;
  ts : int;
  dur : int;
  attrs : attr list;
}

type metric =
  | Counter of { mutable total : int }
  | Gauge of { mutable g : float }
  | Histogram of {
      buckets : int array;
      mutable n : int;
      mutable sum : int;
      mutable vmax : int;
    }

type open_span = { os_id : int; os_name : string; mutable os_attrs : attr list }

type ser = { mutable pts : (int * float) list (* newest first, ts in us *) }

type t = {
  clock : Clock.t option;
  mutable on : bool;
  mutable io_us : float;
  mutable next_id : int;
  mutable evs : event list; (* newest first *)
  mutable nevs : int;
  mutable stack : open_span list; (* innermost first *)
  mutable unbalanced_ends : int;
  metrics : (string, metric) Hashtbl.t;
  ser_tbl : (string, ser) Hashtbl.t;
}

let create ?clock ?(enabled = true) () =
  {
    clock;
    on = enabled;
    io_us = 0.0;
    next_id = 0;
    evs = [];
    nevs = 0;
    stack = [];
    unbalanced_ends = 0;
    metrics = Hashtbl.create 64;
    ser_tbl = Hashtbl.create 16;
  }

(* Natural (numeric-aware) string order: digit runs compare as numbers,
   so scheduler.drive2.* sorts before scheduler.drive10.*. Used wherever
   metric or series names are listed. *)
let nat_compare a b =
  let la = String.length a and lb = String.length b in
  let is_digit c = c >= '0' && c <= '9' in
  let rec go i j =
    if i >= la && j >= lb then 0
    else if i >= la then -1
    else if j >= lb then 1
    else
      let ca = a.[i] and cb = b.[j] in
      if is_digit ca && is_digit cb then begin
        let ei = ref i and ej = ref j in
        while !ei < la && is_digit a.[!ei] do incr ei done;
        while !ej < lb && is_digit b.[!ej] do incr ej done;
        (* skip leading zeros (keep one digit so "0" survives) *)
        let si = ref i and sj = ref j in
        while !si < !ei - 1 && a.[!si] = '0' do incr si done;
        while !sj < !ej - 1 && b.[!sj] = '0' do incr sj done;
        let na = !ei - !si and nb = !ej - !sj in
        if na <> nb then compare na nb
        else
          let c = compare (String.sub a !si na) (String.sub b !sj nb) in
          if c <> 0 then c
          else if !ei - i <> !ej - j then compare (!ei - i) (!ej - j)
          else go !ei !ej
      end
      else if ca <> cb then compare ca cb
      else go (i + 1) (j + 1)
  in
  go 0 0

let enable t b = t.on <- b

(* ------------------------------------------------------------------ *)
(* Arming                                                              *)

let current : t option ref = ref None
let arm t = current := Some t
let disarm () = current := None
let armed () = !current

let with_armed t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f

(* The hot-path check: every instrumentation point below starts with
   [active ()]; the disarmed (or armed-but-disabled) cost is this load
   and branch, nothing more. *)
let active () =
  match !current with
  | Some t when t.on -> Some t
  | Some _ | None -> None

let enabled () = match active () with Some _ -> true | None -> false

(* ------------------------------------------------------------------ *)
(* Virtual time                                                        *)

let now_us t =
  let base = match t.clock with Some c -> Clock.now c *. 1e6 | None -> 0.0 in
  Float.to_int (base +. t.io_us)

(* Self-profiling hooks (host wall clock, never simulated time): the
   probe sits inside the armed-and-enabled branches only, so the
   obs-off fast path is untouched. *)
let p_record = Repro_prof.Prof.probe "obs.record"
let c_hooks = Repro_prof.Prof.counter "obs.hook_invocations"

let push t ev =
  let tok = Repro_prof.Prof.enter p_record in
  t.evs <- ev :: t.evs;
  t.nevs <- t.nevs + 1;
  Repro_prof.Prof.leave tok;
  Repro_prof.Prof.bump c_hooks

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let begin_span t ~attrs name =
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let parent = match t.stack with s :: _ -> s.os_id | [] -> 0 in
  t.stack <- { os_id = id; os_name = name; os_attrs = [] } :: t.stack;
  push t { ph = B; ev_name = name; span = id; parent; ts = now_us t; dur = 0; attrs };
  id

(* Span attributes accumulate newest-first on the fast path (annotate
   is a single rev_append of the new attrs), so closing the span is one
   rev_append instead of the reference's reverse-then-reverse-append.
   Both orders denote the same logical list; the reference transcription
   of the pre-optimization code keeps them honest (Repro_util.Refpath:
   under it annotate appends in order and end_one double-reverses). *)
let[@inline never] end_attrs_reference stored extra =
  List.rev_append (List.rev stored) extra

let end_one t s extra =
  let attrs =
    if Repro_util.Refpath.enabled () then end_attrs_reference s.os_attrs extra
    else List.rev_append s.os_attrs extra
  in
  push t
    {
      ph = E;
      ev_name = s.os_name;
      span = s.os_id;
      parent = 0;
      ts = now_us t;
      dur = 0;
      attrs;
    }

let end_span t ~attrs id =
  if List.exists (fun s -> s.os_id = id) t.stack then begin
    (* Close abandoned inner spans first so B/E events stay balanced. *)
    let rec unwind = function
      | s :: rest when s.os_id <> id ->
        end_one t s [ ("abandoned", Bool true) ];
        unwind rest
      | s :: rest ->
        end_one t s attrs;
        rest
      | [] -> []
    in
    t.stack <- unwind t.stack
  end
  else t.unbalanced_ends <- t.unbalanced_ends + 1

let span_begin ?(attrs = []) name =
  match active () with None -> 0 | Some t -> begin_span t ~attrs name

let span_end ?(attrs = []) id =
  if id <> 0 then
    match active () with None -> () | Some t -> end_span t ~attrs id

let with_span ?(attrs = []) name f =
  match active () with
  | None -> f ()
  | Some t -> (
    let id = begin_span t ~attrs name in
    match f () with
    | v ->
      span_end id;
      v
    | exception e ->
      span_end ~attrs:[ ("error", Str (Printexc.to_string e)) ] id;
      raise e)

let observe name f = with_span name f

let[@inline never] annotate_reference s attrs =
  s.os_attrs <- s.os_attrs @ attrs

let annotate attrs =
  match active () with
  | None -> ()
  | Some t -> (
    match t.stack with
    | s :: _ ->
      if Repro_util.Refpath.enabled () then annotate_reference s attrs
      else s.os_attrs <- List.rev_append attrs s.os_attrs
    | [] -> ())

let current_span () =
  match active () with
  | None -> 0
  | Some t -> ( match t.stack with s :: _ -> s.os_id | [] -> 0)

let instant ?(attrs = []) name =
  match active () with
  | None -> ()
  | Some t ->
    let span = match t.stack with s :: _ -> s.os_id | [] -> 0 in
    push t { ph = I; ev_name = name; span; parent = 0; ts = now_us t; dur = 0; attrs }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and n = ref v in
    while !n > 0 do
      incr b;
      n := !n lsr 1
    done;
    !b
  end

let bucket_lo k = if k <= 0 then 0 else 1 lsl (k - 1)

let counter_on t name n =
  Repro_prof.Prof.bump c_hooks;
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter c) -> c.total <- c.total + n
  | Some _ -> ()
  | None -> Hashtbl.add t.metrics name (Counter { total = n })

let hist_on t name v =
  Repro_prof.Prof.bump c_hooks;
  let tok = Repro_prof.Prof.enter p_record in
  let m =
    match Hashtbl.find_opt t.metrics name with
    | Some m -> m
    | None ->
      let m = Histogram { buckets = Array.make 64 0; n = 0; sum = 0; vmax = min_int } in
      Hashtbl.add t.metrics name m;
      m
  in
  (match m with
  | Histogram h ->
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum + v;
    if v > h.vmax then h.vmax <- v
  | Counter _ | Gauge _ -> ());
  Repro_prof.Prof.leave tok

let count name n =
  match active () with None -> () | Some t -> counter_on t name n

let set_gauge name v =
  match active () with
  | None -> ()
  | Some t -> (
    match Hashtbl.find_opt t.metrics name with
    | Some (Gauge g) -> g.g <- v
    | Some _ -> ()
    | None -> Hashtbl.add t.metrics name (Gauge { g = v }))

let hist name v =
  match active () with None -> () | Some t -> hist_on t name v

let advance secs =
  match active () with
  | None -> ()
  | Some t -> t.io_us <- t.io_us +. (secs *. 1e6)

(* The derived metric names for an op are interned: [io] runs once per
   simulated device operation, and without this each call allocates the
   same three strings again. *)
let io_names : (string, string * string * string) Hashtbl.t = Hashtbl.create 16

let io_name_triple op =
  match Hashtbl.find_opt io_names op with
  | Some names -> names
  | None ->
    let names = (op ^ ".ops", op ^ ".bytes", op ^ ".latency_us") in
    Hashtbl.add io_names op names;
    names

let io ~op ~device ?(addr = -1) ~bytes dur_s =
  match active () with
  | None -> ()
  | Some t ->
    let span = match t.stack with s :: _ -> s.os_id | [] -> 0 in
    let dur = Float.to_int (dur_s *. 1e6) in
    let attrs =
      let base = [ ("device", Str device); ("bytes", Int bytes) ] in
      if addr >= 0 then ("addr", Int addr) :: base else base
    in
    push t { ph = X; ev_name = op; span; parent = 0; ts = now_us t; dur; attrs };
    t.io_us <- t.io_us +. (dur_s *. 1e6);
    let ops_name, bytes_name, lat_name = io_name_triple op in
    counter_on t ops_name 1;
    counter_on t bytes_name bytes;
    hist_on t lat_name dur

let sample ?at name v =
  match active () with
  | None -> ()
  | Some t ->
    let ts =
      match at with Some s -> Float.to_int (s *. 1e6) | None -> now_us t
    in
    Repro_prof.Prof.bump c_hooks;
    let s =
      match Hashtbl.find_opt t.ser_tbl name with
      | Some s -> s
      | None ->
        let s = { pts = [] } in
        Hashtbl.add t.ser_tbl name s;
        s
    in
    s.pts <- (ts, v) :: s.pts

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

let events t = List.rev t.evs
let open_spans t = List.length t.stack
let unbalanced t = t.unbalanced_ends

let counter_value t name =
  match Hashtbl.find_opt t.metrics name with Some (Counter c) -> c.total | _ -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.metrics name with Some (Gauge g) -> Some g.g | _ -> None

let hist_stats t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) -> Some (h.n, h.sum, if h.n = 0 then 0 else h.vmax)
  | _ -> None

let hist_buckets t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) ->
    let acc = ref [] in
    for k = Array.length h.buckets - 1 downto 0 do
      if h.buckets.(k) > 0 then acc := (k, h.buckets.(k)) :: !acc
    done;
    !acc
  | _ -> []

(* Percentile estimate inside log2 buckets: find the bucket holding the
   rank, interpolate linearly within [bucket_lo k, bucket_lo (k+1)), and
   clamp to the exact observed maximum. Bucket 0 (values <= 0) maps to
   0. Exact for constant distributions; within one bucket otherwise. *)
let percentile_of buckets n sum vmax q =
  if n = 0 then 0.0
  else if
    (* sum = n * vmax forces every value to equal the max (nothing can
       exceed it): the distribution is constant, every quantile exact. *)
    (vmax = 0 || Int.abs vmax <= max_int / n) && sum = n * vmax
  then Float.of_int vmax
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. Float.of_int n in
    let est = ref (Float.of_int vmax) and cum = ref 0 and k = ref 0 and stop = ref false in
    while (not !stop) && !k < Array.length buckets do
      let c = buckets.(!k) in
      if c > 0 && Float.of_int (!cum + c) >= rank then begin
        let lo = Float.of_int (bucket_lo !k) in
        let hi = if !k = 0 then 0.0 else Float.of_int (bucket_lo (!k + 1)) in
        let frac = (rank -. Float.of_int !cum) /. Float.of_int c in
        est := lo +. ((hi -. lo) *. frac);
        stop := true
      end;
      cum := !cum + c;
      incr k
    done;
    (* Clamp into the observed range. Bucket 0 pools every value <= 0 and
       estimates it as 0.0, which overestimates an all-negative
       histogram; when vmax < 0 clamp down to vmax so this path agrees
       with the constant-distribution fast path above. *)
    let lo_clamp = Float.min 0.0 (Float.of_int vmax) in
    Float.max lo_clamp (Float.min !est (Float.of_int vmax))
  end

let hist_percentile t name q =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) when h.n > 0 -> Some (percentile_of h.buckets h.n h.sum h.vmax q)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Series                                                              *)

let series_bins = 64

(* Fixed-interval per-device busy-fraction timelines derived from the
   recorded X (device op) events: the device layers' Obs.io calls are
   the sampling hook. Retry backoff X events are idle waiting, not
   device occupancy, so they are excluded. *)
let device_series t =
  let xs =
    List.filter
      (fun e ->
        e.ph = X && e.dur > 0
        && not
             (String.length e.ev_name >= 6 && String.sub e.ev_name 0 6 = "retry."))
      (events t)
  in
  if xs = [] then []
  else begin
    let tend =
      List.fold_left (fun acc e -> Stdlib.max acc (e.ts + e.dur)) 0 xs
    in
    if tend <= 0 then []
    else begin
      let w = Float.of_int tend /. Float.of_int series_bins in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let device =
            match List.assoc_opt "device" e.attrs with
            | Some (Str d) -> d
            | _ -> "unknown"
          in
          let arr =
            match Hashtbl.find_opt tbl device with
            | Some a -> a
            | None ->
              let a = Array.make series_bins 0.0 in
              Hashtbl.add tbl device a;
              a
          in
          let t0 = Float.of_int e.ts and t1 = Float.of_int (e.ts + e.dur) in
          let b0 = Stdlib.max 0 (Float.to_int (t0 /. w))
          and b1 =
            Stdlib.min (series_bins - 1) (Float.to_int ((t1 -. 1e-9) /. w))
          in
          for bin = b0 to b1 do
            let lo = w *. Float.of_int bin and hi = w *. Float.of_int (bin + 1) in
            let ov = Float.min hi t1 -. Float.max lo t0 in
            if ov > 0.0 then arr.(bin) <- arr.(bin) +. ov
          done)
        xs;
      Hashtbl.fold
        (fun device arr acc ->
          let pts =
            Array.to_list
              (Array.mapi
                 (fun bin busy ->
                   (w *. Float.of_int bin /. 1e6, Float.min 1.0 (busy /. w)))
                 arr)
          in
          (Printf.sprintf "dev.%s.busy" device, pts) :: acc)
        tbl []
      |> List.sort (fun (a, _) (b, _) -> nat_compare a b)
    end
  end

let recorded_series t =
  Hashtbl.fold
    (fun name s acc ->
      ( name,
        List.rev_map (fun (ts, v) -> (Float.of_int ts /. 1e6, v)) s.pts )
      :: acc)
    t.ser_tbl []
  |> List.sort (fun (a, _) (b, _) -> nat_compare a b)

let all_series t =
  List.sort
    (fun (a, _) (b, _) -> nat_compare a b)
    (recorded_series t @ device_series t)

let series t name =
  match List.assoc_opt name (recorded_series t) with
  | Some pts -> pts
  | None -> ( match List.assoc_opt name (device_series t) with
    | Some pts -> pts
    | None -> [])

let series_names t = List.map fst (all_series t)

(* Points live newest-first, so the latest point (or the latest at or
   before a cutoff) is reachable without materializing the series. *)
let series_last t ?at name =
  match Hashtbl.find_opt t.ser_tbl name with
  | None -> None
  | Some s ->
    let cut = match at with Some a -> Float.to_int (a *. 1e6) | None -> max_int in
    let rec newest = function
      | [] -> None
      | (ts, v) :: rest ->
        if ts <= cut then Some (Float.of_int ts /. 1e6, v) else newest rest
    in
    newest s.pts

let series_since t ~t0 name =
  match Hashtbl.find_opt t.ser_tbl name with
  | None -> []
  | Some s ->
    let lo = Float.to_int (t0 *. 1e6) in
    let rec collect acc = function
      | (ts, v) :: rest when ts >= lo ->
        collect ((Float.of_int ts /. 1e6, v) :: acc) rest
      | _ -> acc
    in
    collect [] s.pts

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_json = function
  | Int i -> string_of_int i
  (* %.6g would render nan/inf bare, which is not JSON. *)
  | Float f -> if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let args_json b extra attrs =
  Buffer.add_string b "{";
  let first = ref true in
  let field (k, v) =
    if not !first then Buffer.add_string b ",";
    first := false;
    Buffer.add_string b "\"";
    Buffer.add_string b (json_escape k);
    Buffer.add_string b "\":";
    Buffer.add_string b (value_json v)
  in
  List.iter field extra;
  List.iter field attrs;
  Buffer.add_string b "}"

(* Lane (Perfetto thread track) assignment: a span carrying a [drive]
   attr gets a per-drive lane, else a nonempty [host] attr a per-host
   lane, else it inherits its parent's lane; instants and device ops
   render on their enclosing span's lane. Tids are dense, assigned in
   first-appearance order with "main" as tid 1, and named via
   [thread_name] metadata events. *)
let assign_lanes evs =
  let lane_tid = Hashtbl.create 8 in
  let lane_order = ref [] in
  let tid_of lane =
    match Hashtbl.find_opt lane_tid lane with
    | Some id -> id
    | None ->
      let id = Hashtbl.length lane_tid + 1 in
      Hashtbl.add lane_tid lane id;
      lane_order := lane :: !lane_order;
      id
  in
  ignore (tid_of "main");
  let span_lane = Hashtbl.create 64 in
  let tids =
    List.map
      (fun ev ->
        match ev.ph with
        | B ->
          let inherited =
            match Hashtbl.find_opt span_lane ev.parent with
            | Some l -> l
            | None -> "main"
          in
          let lane =
            match List.assoc_opt "drive" ev.attrs with
            | Some (Int d) -> Printf.sprintf "drive %d" d
            | _ -> (
              match List.assoc_opt "host" ev.attrs with
              | Some (Str h) when h <> "" -> "host " ^ h
              | _ -> inherited)
          in
          Hashtbl.replace span_lane ev.span lane;
          tid_of lane
        | E | I | X -> (
          match Hashtbl.find_opt span_lane ev.span with
          | Some l -> tid_of l
          | None -> tid_of "main"))
      evs
  in
  (List.rev !lane_order, tids)

let chrome_trace t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  let evs = events t in
  let lanes, tids = assign_lanes evs in
  List.iteri
    (fun tid0 lane ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (tid0 + 1) (json_escape lane)))
    lanes;
  List.iter2
    (fun ev tid ->
      let ph, extra =
        match ev.ph with
        | B -> ("B", [ ("span", Int ev.span); ("parent", Int ev.parent) ])
        | E -> ("E", [ ("span", Int ev.span) ])
        | I -> ("i", [ ("span", Int ev.span) ])
        | X -> ("X", [ ("span", Int ev.span) ])
      in
      let line = Buffer.create 128 in
      Buffer.add_string line
        (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%d"
           (json_escape ev.ev_name) ph tid ev.ts);
      if ev.ph = X then Buffer.add_string line (Printf.sprintf ",\"dur\":%d" ev.dur);
      if ev.ph = I then Buffer.add_string line ",\"s\":\"t\"";
      Buffer.add_string line ",\"args\":";
      args_json line extra ev.attrs;
      Buffer.add_string line "}";
      emit (Buffer.contents line))
    evs tids;
  (* Utilization and busy-fraction timelines as Perfetto counter tracks. *)
  List.iter
    (fun (name, pts) ->
      List.iter
        (fun (ts_s, v) ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%d,\"args\":{\"value\":%s}}"
               (json_escape name)
               (Float.to_int (ts_s *. 1e6))
               (value_json (Float v))))
        pts)
    (all_series t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"backup_repro obs\"}}\n";
  Buffer.contents b

let sorted_metrics t =
  List.sort
    (fun (a, _) (b, _) -> nat_compare a b)
    (Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.metrics [])

let metrics_jsonl t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      (match m with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"type\":\"counter\",\"value\":%d}"
             (json_escape name) c.total)
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"type\":\"gauge\",\"value\":%s}"
             (json_escape name)
             (value_json (Float g.g)))
      | Histogram h ->
        let pct q =
          if h.n = 0 then "0" else value_json (Float (percentile_of h.buckets h.n h.sum h.vmax q))
        in
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":["
             (json_escape name) h.n h.sum
             (if h.n = 0 then 0 else h.vmax)
             (pct 0.5) (pct 0.95) (pct 0.99));
        let first = ref true in
        Array.iteri
          (fun k c ->
            if c > 0 then begin
              if not !first then Buffer.add_string b ",";
              first := false;
              Buffer.add_string b (Printf.sprintf "[%d,%d]" k c)
            end)
          h.buckets;
        Buffer.add_string b "]}");
      Buffer.add_string b "\n")
    (sorted_metrics t);
  Buffer.contents b

let series_jsonl t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, pts) ->
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"type\":\"series\",\"points\":["
           (json_escape name));
      let first = ref true in
      List.iter
        (fun (ts_s, v) ->
          if not !first then Buffer.add_string b ",";
          first := false;
          Buffer.add_string b
            (Printf.sprintf "[%s,%s]" (value_json (Float ts_s)) (value_json (Float v))))
        pts;
      Buffer.add_string b "]}\n")
    (all_series t);
  Buffer.contents b

let pp_summary ppf t =
  let spans = List.length (List.filter (fun e -> e.ph = B) (events t)) in
  Format.fprintf ppf "obs plane: %d events (%d spans), %d open, %d unbalanced ends@."
    t.nevs spans (open_spans t) (unbalanced t);
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) (name, m) ->
        match m with
        | Counter c -> ((name, c.total) :: cs, gs, hs)
        | Gauge g -> (cs, (name, g.g) :: gs, hs)
        | Histogram h ->
          let pct q = if h.n = 0 then 0.0 else percentile_of h.buckets h.n h.sum h.vmax q in
          ( cs,
            gs,
            ( name,
              ( h.n,
                h.sum,
                (if h.n = 0 then 0 else h.vmax),
                pct 0.5,
                pct 0.95,
                pct 0.99 ) )
            :: hs ))
      ([], [], []) (sorted_metrics t)
  in
  if counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-32s %12d@." name v)
      (List.rev counters)
  end;
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-32s %12.2f@." name v)
      (List.rev gauges)
  end;
  if hists <> [] then begin
    Format.fprintf ppf "histograms: %-20s %8s %14s %12s %10s %10s %10s@." ""
      "count" "sum" "max" "p50" "p95" "p99";
    List.iter
      (fun (name, (n, sum, vmax, p50, p95, p99)) ->
        Format.fprintf ppf "  %-30s %8d %14d %12d %10.0f %10.0f %10.0f@." name n
          sum vmax p50 p95 p99)
      (List.rev hists)
  end
