(* Trace analysis: turn a recorded obs plane into the diagnosis behind
   the paper's tables — which resource gated the run, through which
   parts the elapsed time flowed, what each device was doing when. Pure
   function of the trace: identical seeds, identical report bytes. *)

type verdict =
  | Tape_limited
  | Disk_limited
  | Cpu_limited
  | Wire_limited
  | Balanced

let verdict_to_string = function
  | Tape_limited -> "tape-limited"
  | Disk_limited -> "disk-limited"
  | Cpu_limited -> "cpu-limited"
  | Wire_limited -> "wire-limited"
  | Balanced -> "balanced"

type usage = { u_class : string; u_mean : float; u_peak : float }

type step = {
  s_part : int;
  s_drive : int;
  s_start : float;
  s_finish : float;
  s_seconds : (string * float) list;
}

type critical_path = {
  cp_steps : step list;
  cp_seconds : (string * float) list;
  cp_pct : (string * float) list;
}

type phase = {
  p_name : string;
  p_elapsed : float;
  p_verdict : verdict;
  p_usage : usage list;
  p_path : critical_path option;
}

type report = { phases : phase list }

(* ------------------------------------------------------------------ *)
(* Resource classes                                                    *)

let classes = [ "tape"; "disk"; "cpu"; "wire" ]
let path_classes = classes @ [ "backoff" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

module Resource_id = Repro_sim.Resource_id

(* Resource keys as the scheduler and the engine name them, decoded
   through {!Resource_id.of_key} rather than ad-hoc prefix parsing. The
   [Key] fallbacks keep the historical classification of bare "tape" /
   "disk" / "cpu<n>" keys and of net keys without a part suffix. *)
let class_of_key k =
  match Resource_id.of_key k with
  | Resource_id.Tape _ -> Some "tape"
  | Resource_id.Disk _ -> Some "disk"
  | Resource_id.Cpu -> Some "cpu"
  | Resource_id.Net _ | Resource_id.Link _ -> Some "wire"
  | Resource_id.Drive _ | Resource_id.Tenant _ -> None
  | Resource_id.Key s ->
    if s = "tape" then Some "tape"
    else if s = "disk" then Some "disk"
    else if starts_with ~prefix:"cpu" s then Some "cpu"
    else if starts_with ~prefix:"net:" s then Some "wire"
    else None

(* ------------------------------------------------------------------ *)
(* Bottleneck attribution                                              *)

(* A class is the bottleneck when its mean busy fraction clears the
   attribution threshold and leads the runner-up by a clear margin;
   otherwise the phase is balanced. *)
let attribution_threshold = 0.80
let attribution_margin = 0.10

let verdict_of_class = function
  | "tape" -> Tape_limited
  | "disk" -> Disk_limited
  | "cpu" -> Cpu_limited
  | "wire" -> Wire_limited
  | _ -> Balanced

let classify usage =
  match List.sort (fun a b -> compare b.u_mean a.u_mean) usage with
  | [] -> Balanced
  | top :: rest ->
    let second = match rest with u :: _ -> u.u_mean | [] -> 0.0 in
    if
      top.u_mean >= attribution_threshold
      && top.u_mean -. second >= attribution_margin
    then verdict_of_class top.u_class
    else Balanced

(* Mean/peak busy fractions per class from the <prefix>.util.<key>
   series. Within the tape class each key is one drive of the pool, so
   the class mean is the mean across drives (a half-idle pool reads
   0.5); the other classes are single shared resources per key, so the
   class takes the busiest key. *)
let usage_of obs ~prefix =
  let p = prefix ^ ".util." in
  let keyed =
    List.filter_map
      (fun name ->
        if starts_with ~prefix:p name then
          let key = String.sub name (String.length p) (String.length name - String.length p) in
          match class_of_key key with
          | Some cls -> (
            match Obs.series obs name with
            | [] -> None
            | pts ->
              let n = Float.of_int (List.length pts) in
              let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 pts in
              let peak = List.fold_left (fun a (_, v) -> Float.max a v) 0.0 pts in
              Some (cls, (sum /. n, peak)))
          | None -> None
        else None)
      (Obs.series_names obs)
  in
  List.filter_map
    (fun cls ->
      match List.filter (fun (c, _) -> c = cls) keyed with
      | [] -> None
      | keys ->
        let means = List.map (fun (_, (m, _)) -> m) keys in
        let mean =
          match cls with
          | "tape" ->
            List.fold_left ( +. ) 0.0 means /. Float.of_int (List.length means)
          | _ -> List.fold_left Float.max 0.0 means
        in
        let peak = List.fold_left (fun a (_, (_, p)) -> Float.max a p) 0.0 keys in
        Some { u_class = cls; u_mean = mean; u_peak = peak })
    classes

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)

type part_rec = {
  pr_part : int;
  pr_drive : int;
  pr_start : float;
  pr_finish : float;
  mutable pr_demands : (string * float) list; (* class -> seconds *)
  mutable pr_backoff : float;
}

let eps = 1e-6

let attr_int attrs k =
  match List.assoc_opt k attrs with Some (Obs.Int i) -> Some i | _ -> None

let attr_float attrs k =
  match List.assoc_opt k attrs with
  | Some (Obs.Float f) -> Some f
  | Some (Obs.Int i) -> Some (Float.of_int i)
  | _ -> None

let sum_by_class kvs =
  List.map
    (fun cls ->
      ( cls,
        List.fold_left
          (fun acc (k, v) -> if k = cls then acc +. v else acc)
          0.0 kvs ))
    path_classes

(* The per-part resource seconds come from the demand vector the part's
   span closed with. A remote part carries both the wire elapsed
   (net:host#k) and the link busy (link:host) for the same transfer;
   the elapsed is the gating interval, so when both appear the link
   seconds are dropped rather than double counted. *)
let seconds_of_demands demands =
  let is_net k =
    match Resource_id.of_key k with
    | Resource_id.Net _ -> true
    | Resource_id.Key s -> starts_with ~prefix:"net:" s
    | _ -> false
  in
  let has_net = List.exists (fun (k, _) -> is_net k) demands in
  let classed =
    List.filter_map
      (fun (k, v) ->
        match Resource_id.of_key k with
        | Resource_id.Link _ when has_net -> None
        | _ -> (
          match class_of_key k with
          | Some cls -> Some (cls, v)
          | None -> None))
      demands
  in
  sum_by_class classed

let critical_path obs =
  let evs = Obs.events obs in
  (* Span tree: parents from B events, part spans by name. *)
  let parent = Hashtbl.create 64 in
  let part_spans = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.event) ->
      match e.Obs.ph with
      | Obs.B ->
        Hashtbl.replace parent e.Obs.span e.Obs.parent;
        if e.Obs.ev_name = "part" then (
          match attr_int e.Obs.attrs "part" with
          | Some p -> Hashtbl.replace part_spans e.Obs.span p
          | None -> ())
      | _ -> ())
    evs;
  (* Completed parts from the scheduler's part_done instants. *)
  let parts = Hashtbl.create 16 in
  List.iter
    (fun (e : Obs.event) ->
      if e.Obs.ph = Obs.I && e.Obs.ev_name = "scheduler.part_done" then
        match (attr_int e.Obs.attrs "part", attr_float e.Obs.attrs "sim_finish_s") with
        | Some p, Some finish ->
          Hashtbl.replace parts p
            {
              pr_part = p;
              pr_drive = Option.value ~default:0 (attr_int e.Obs.attrs "drive");
              pr_start =
                Option.value ~default:0.0 (attr_float e.Obs.attrs "sim_start_s");
              pr_finish = finish;
              pr_demands = [];
              pr_backoff = 0.0;
            }
        | _ -> ())
    evs;
  (* Demand vectors from the closing attrs of each part's span; retry
     backoff from X events nested (at any depth) inside it. Abandoned or
     error spans may close without demands — their record just keeps an
     empty vector. *)
  let part_of_span span =
    let rec up s =
      if s = 0 then None
      else
        match Hashtbl.find_opt part_spans s with
        | Some p -> Some p
        | None -> up (Option.value ~default:0 (Hashtbl.find_opt parent s))
    in
    up span
  in
  List.iter
    (fun (e : Obs.event) ->
      match e.Obs.ph with
      | Obs.E -> (
        match Hashtbl.find_opt part_spans e.Obs.span with
        | Some p -> (
          match Hashtbl.find_opt parts p with
          | Some r ->
            let demands =
              List.filter_map
                (fun (k, v) ->
                  if starts_with ~prefix:"demand:" k then
                    match v with
                    | Obs.Float f ->
                      Some (String.sub k 7 (String.length k - 7), f)
                    | _ -> None
                  else None)
                e.Obs.attrs
            in
            if demands <> [] then r.pr_demands <- seconds_of_demands demands
          | None -> ())
        | None -> ())
      | Obs.X when e.Obs.ev_name = "retry.backoff" -> (
        match part_of_span e.Obs.span with
        | Some p -> (
          match Hashtbl.find_opt parts p with
          | Some r ->
            r.pr_backoff <- r.pr_backoff +. (Float.of_int e.Obs.dur /. 1e6)
          | None -> ())
        | None -> ())
      | _ -> ())
    evs;
  let all = Hashtbl.fold (fun _ r acc -> r :: acc) parts [] in
  match all with
  | [] -> None
  | _ ->
    (* Walk back from the last-finishing part. Each admission was gated
       by the completion that freed its slot: prefer the part that
       released this part's own drive, fall back to any completion at
       the admission instant (max_active gating). *)
    let last =
      List.fold_left
        (fun best r ->
          if
            r.pr_finish > best.pr_finish +. eps
            || (Float.abs (r.pr_finish -. best.pr_finish) <= eps
               && r.pr_part < best.pr_part)
          then r
          else best)
        (List.hd all) all
    in
    let visited = Hashtbl.create 16 in
    let rec walk r acc =
      Hashtbl.replace visited r.pr_part ();
      let acc = r :: acc in
      if r.pr_start <= eps then acc
      else
        let gating =
          List.filter
            (fun c ->
              (not (Hashtbl.mem visited c.pr_part))
              && Float.abs (c.pr_finish -. r.pr_start) <= eps)
            all
        in
        let pick =
          match List.filter (fun c -> c.pr_drive = r.pr_drive) gating with
          | c :: rest ->
            Some (List.fold_left (fun b x -> if x.pr_part < b.pr_part then x else b) c rest)
          | [] -> (
            match gating with
            | c :: rest ->
              Some
                (List.fold_left (fun b x -> if x.pr_part < b.pr_part then x else b) c rest)
            | [] -> None)
        in
        match pick with None -> acc | Some p -> walk p acc
    in
    let steps_r = walk last [] in
    let steps =
      List.map
        (fun r ->
          {
            s_part = r.pr_part;
            s_drive = r.pr_drive;
            s_start = r.pr_start;
            s_finish = r.pr_finish;
            s_seconds =
              List.map
                (fun (cls, v) ->
                  (cls, if cls = "backoff" then v +. r.pr_backoff else v))
                (match r.pr_demands with
                | [] -> sum_by_class []
                | d -> d);
          })
        steps_r
    in
    let cp_seconds =
      List.map
        (fun cls ->
          ( cls,
            List.fold_left
              (fun acc s ->
                acc +. Option.value ~default:0.0 (List.assoc_opt cls s.s_seconds))
              0.0 steps ))
        path_classes
    in
    let elapsed = last.pr_finish in
    let cp_pct =
      List.map
        (fun (cls, v) ->
          (cls, if elapsed > 0.0 then 100.0 *. v /. elapsed else 0.0))
        cp_seconds
    in
    Some { cp_steps = steps; cp_seconds; cp_pct }

(* ------------------------------------------------------------------ *)
(* The report                                                          *)

(* Phase elapsed: the engine span's closing sim_elapsed_s annotation,
   falling back to the critical path's last finish, then to the last
   sample time of the phase's series. *)
let elapsed_of obs ~prefix ~path =
  let from_span =
    List.fold_left
      (fun acc (e : Obs.event) ->
        if e.Obs.ph = Obs.E && e.Obs.ev_name = "engine." ^ prefix then
          match attr_float e.Obs.attrs "sim_elapsed_s" with
          | Some s -> Some s
          | None -> acc
        else acc)
      None (Obs.events obs)
  in
  match from_span with
  | Some s -> s
  | None -> (
    match path with
    | Some cp ->
      List.fold_left (fun acc s -> Float.max acc s.s_finish) 0.0 cp.cp_steps
    | None ->
      let p = prefix ^ ".util." in
      List.fold_left
        (fun acc name ->
          if starts_with ~prefix:p name then
            List.fold_left (fun a (ts, _) -> Float.max a ts) acc (Obs.series obs name)
          else acc)
        0.0 (Obs.series_names obs))

let analyze obs =
  let phases =
    List.filter_map
      (fun name ->
        match usage_of obs ~prefix:name with
        | [] -> None
        | usage ->
          let path = if name = "backup" then critical_path obs else None in
          let elapsed = elapsed_of obs ~prefix:name ~path in
          let path =
            (* Re-express the percentages against the phase elapsed. *)
            Option.map
              (fun cp ->
                {
                  cp with
                  cp_pct =
                    List.map
                      (fun (cls, v) ->
                        (cls, if elapsed > 0.0 then 100.0 *. v /. elapsed else 0.0))
                      cp.cp_seconds;
                })
              path
          in
          Some
            {
              p_name = name;
              p_elapsed = elapsed;
              p_verdict = classify usage;
              p_usage = usage;
              p_path = path;
            })
      [ "backup"; "restore"; "fleet" ]
  in
  { phases }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let fnum f =
  (* %.6g like the rest of the plane's exporters; stable bytes. *)
  Printf.sprintf "%.6g" f

let class_obj kvs =
  "{"
  ^ String.concat ","
      (List.map (fun (cls, v) -> Printf.sprintf "%S:%s" cls (fnum v)) kvs)
  ^ "}"

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"analysis\":\"v1\",\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "{\"phase\":%S,\"verdict\":%S,\"elapsed_s\":%s,\"resources\":["
           p.p_name
           (verdict_to_string p.p_verdict)
           (fnum p.p_elapsed));
      List.iteri
        (fun j u ->
          if j > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf "{\"class\":%S,\"mean_util\":%s,\"peak_util\":%s}"
               u.u_class (fnum u.u_mean) (fnum u.u_peak)))
        p.p_usage;
      Buffer.add_string b "]";
      (match p.p_path with
      | None -> ()
      | Some cp ->
        Buffer.add_string b ",\"critical_path\":{\"steps\":[";
        List.iteri
          (fun j s ->
            if j > 0 then Buffer.add_string b ",";
            Buffer.add_string b
              (Printf.sprintf
                 "{\"part\":%d,\"drive\":%d,\"start_s\":%s,\"finish_s\":%s,\"seconds\":%s}"
                 s.s_part s.s_drive (fnum s.s_start) (fnum s.s_finish)
                 (class_obj s.s_seconds)))
          cp.cp_steps;
        Buffer.add_string b
          (Printf.sprintf "],\"resource_s\":%s,\"resource_pct\":%s}"
             (class_obj cp.cp_seconds) (class_obj cp.cp_pct)));
      Buffer.add_string b "}")
    r.phases;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Disaster-recovery drills                                            *)

type dr = {
  dr_rpo_s : float;
  dr_rto_s : float;
  dr_lag : (string * (float * float) list) list;
}

let lag_prefix = "repl.lag_s."

let dr obs =
  match
    (Obs.gauge_value obs "repl.rpo_s", Obs.gauge_value obs "repl.rto_s")
  with
  | Some rpo, Some rto ->
    let plen = String.length lag_prefix in
    let lag =
      Obs.series_names obs
      |> List.filter (fun n ->
             String.length n > plen && String.sub n 0 plen = lag_prefix)
      |> List.sort Obs.nat_compare
      |> List.map (fun n ->
             (String.sub n plen (String.length n - plen), Obs.series obs n))
    in
    Some { dr_rpo_s = rpo; dr_rto_s = rto; dr_lag = lag }
  | _ -> None

let dr_to_json d =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"rpo_s\":%s,\"rto_s\":%s,\"lag\":{" (fnum d.dr_rpo_s)
       (fnum d.dr_rto_s));
  List.iteri
    (fun i (node, points) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b (Printf.sprintf "%S:[" node);
      List.iteri
        (fun j (t, v) ->
          if j > 0 then Buffer.add_string b ",";
          Buffer.add_string b (Printf.sprintf "[%s,%s]" (fnum t) (fnum v)))
        points;
      Buffer.add_string b "]")
    d.dr_lag;
  Buffer.add_string b "}}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Series CSV export                                                   *)

(* Long format so a plotting tool can facet on the series column; one
   header, then one row per point, series in nat order, points in
   recording order. Deterministic bytes for identical planes. *)
let series_csv obs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "series,t_s,value\n";
  List.iter
    (fun name ->
      List.iter
        (fun (t, v) ->
          Buffer.add_string b name;
          Buffer.add_char b ',';
          Buffer.add_string b (fnum t);
          Buffer.add_char b ',';
          Buffer.add_string b (fnum v);
          Buffer.add_char b '\n')
        (Obs.series obs name))
    (Obs.series_names obs);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Utilization sampling                                                *)

type sampler = {
  sm_prefix : string;
  sm_bins : int;
  sm_t0 : float;
  mutable sm_segments : (float * float * (string * float) list) list;
      (* newest first *)
  mutable sm_end : float;
}

let sampler ?(bins = 64) ?(t0 = 0.0) ~prefix () =
  { sm_prefix = prefix; sm_bins = bins; sm_t0 = t0; sm_segments = []; sm_end = 0.0 }

let strip_part_suffix key =
  match String.index_opt key '#' with
  | Some i -> String.sub key 0 i
  | None -> key

let sampler_segment s ~t0 ~t1 utils =
  if t1 > t0 then begin
    s.sm_segments <- (t0, t1, utils) :: s.sm_segments;
    if t1 > s.sm_end then s.sm_end <- t1
  end

let sampler_flush s =
  if s.sm_end > 0.0 && s.sm_segments <> [] then begin
    let w = s.sm_end /. Float.of_int s.sm_bins in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (t0, t1, utils) ->
        List.iter
          (fun (key, u) ->
            let key = strip_part_suffix key in
            let arr =
              match Hashtbl.find_opt tbl key with
              | Some a -> a
              | None ->
                let a = Array.make s.sm_bins 0.0 in
                Hashtbl.add tbl key a;
                a
            in
            let b0 = Stdlib.max 0 (Float.to_int (t0 /. w))
            and b1 =
              Stdlib.min (s.sm_bins - 1) (Float.to_int ((t1 -. 1e-12) /. w))
            in
            for bin = b0 to b1 do
              let lo = w *. Float.of_int bin and hi = w *. Float.of_int (bin + 1) in
              let ov = Float.min hi t1 -. Float.max lo t0 in
              if ov > 0.0 then arr.(bin) <- arr.(bin) +. (u *. ov)
            done)
          utils)
      s.sm_segments;
    let keys =
      List.sort Obs.nat_compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
    in
    List.iter
      (fun key ->
        let arr = Hashtbl.find tbl key in
        let name = s.sm_prefix ^ ".util." ^ key in
        Array.iteri
          (fun bin busy ->
            Obs.sample
              ~at:(s.sm_t0 +. (w *. Float.of_int bin))
              name
              (Float.min 1.0 (busy /. w)))
          arr)
      keys;
    s.sm_segments <- [];
    s.sm_end <- 0.0
  end
