(** Deterministic tracing and metrics.

    The observability {e plane} is the measurement twin of the fault
    plane ({!Repro_fault.Fault}): one plane at a time is globally armed,
    instrumentation points all over the stack consult it, and when no
    plane is armed (or the armed plane was created with [~enabled:false])
    every hook is a single load-and-branch — the [bench obs] target
    holds that cost under 1% on the Table 2 dump pass.

    Everything recorded is a pure function of the workload: timestamps
    come from a {e virtual clock} — the attached simulated clock
    ({!Repro_sim.Clock}), if any, plus the accumulated simulated device
    time reported by the I/O layers — never from the host. Identical
    seeds therefore produce byte-identical traces and metrics snapshots
    (property-tested in [test/test_obs.ml]).

    Three kinds of data are collected:

    - {e spans}: hierarchical begin/end intervals ("engine.backup" →
      "part" → "dumping files" → per-record tape I/O) with parent/child
      ids and typed attributes;
    - {e metrics}: a registry of named counters, gauges, and log2-bucket
      histograms;
    - {e instants}: point events (fault injections, repairs, retries)
      tagged with the id of the span they occurred inside — the
      correlation between the fault journal and the trace.

    Exporters render a plane as a Chrome [trace_event] JSON file
    (loadable in Perfetto / [about:tracing]), a JSONL metrics dump, or a
    human summary table. See [docs/OBSERVABILITY.md]. *)

(** {1 Attributes} *)

type value = Int of int | Float of float | Str of string | Bool of bool
type attr = string * value

(** {1 The plane} *)

type t

val create : ?clock:Repro_sim.Clock.t -> ?enabled:bool -> unit -> t
(** A fresh plane. [clock] (default none) anchors virtual timestamps to
    a simulated clock; device time accumulated via {!io} is added on
    top. [enabled] (default [true]) — an armed-but-disabled plane
    exercises the hook branches without recording anything, which is
    what [bench obs] measures. *)

val enable : t -> bool -> unit

(** {1 Arming}

    One plane is globally armed at a time; hooks consult it. *)

val arm : t -> unit
val disarm : unit -> unit
val armed : unit -> t option

val with_armed : t -> (unit -> 'a) -> 'a
(** Run a thunk with the plane armed, restoring the previously armed
    plane afterwards (also on exception). *)

val enabled : unit -> bool
(** [true] iff a plane is armed and recording. *)

(** {1 Spans}

    All span operations are ambient: they act on the armed plane and
    are no-ops (returning span id 0) when none is recording. *)

val span_begin : ?attrs:attr list -> string -> int
(** Open a span; returns its id (0 when disabled). The parent is the
    innermost open span. *)

val span_end : ?attrs:attr list -> int -> unit
(** Close span [id]. Closing out of order closes the intervening spans
    too (marked [abandoned]); closing an id that is not open is counted
    in {!unbalanced} and otherwise ignored; id 0 is a no-op. *)

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. If [f] raises, the span
    is closed with an [error] attribute and the exception rethrown. *)

val observe : string -> (unit -> 'a) -> 'a
(** [with_span] under the [~observe] callback shape used by
    {!Repro_dump.Dump.run} and friends: stage label = span name. *)

val annotate : attr list -> unit
(** Attach attributes to the innermost open span (emitted on its end
    event). *)

val current_span : unit -> int
(** Id of the innermost open span; 0 at the root or when disabled. *)

val instant : ?attrs:attr list -> string -> unit
(** A point event inside the current span. *)

val io : op:string -> device:string -> ?addr:int -> bytes:int -> float -> unit
(** [io ~op ~device ~bytes dur_s] records one device operation: a
    complete event of [dur_s] simulated seconds at the virtual now
    (advancing it), plus [op].ops / [op].bytes counters and an
    [op].latency_us histogram observation. *)

val advance : float -> unit
(** Advance the virtual clock by simulated seconds without recording an
    event (e.g. retry backoff charged to an engine clock the plane is
    not attached to). *)

val sample : ?at:float -> string -> float -> unit
(** [sample name v] appends one point to the named time series at the
    virtual now, or at [at] simulated seconds when given (e.g. points on
    a scheduler's own timeline). Series feed {!series_jsonl} and render
    as Perfetto counter tracks in {!chrome_trace}; the scheduler records
    per-resource utilization timelines through this hook
    ({!Analysis.sampler}). *)

(** {1 Metrics} (ambient, like spans) *)

val count : string -> int -> unit
(** Add to a counter, creating it at 0. *)

val set_gauge : string -> float -> unit
val hist : string -> int -> unit
(** Record a value into a log2-bucket histogram: bucket 0 holds values
    [<= 0]; bucket [k >= 1] holds [2{^k-1} <= v < 2{^k}] (so 1 → bucket
    1, [max_int] → bucket 62). *)

val bucket_of : int -> int
(** The bucket index {!hist} files a value under (exposed for tests). *)

val bucket_lo : int -> int
(** Smallest value of bucket [k] (0 for bucket 0). *)

(** {1 Inspection and export} *)

type phase = B | E | I | X

type event = {
  ph : phase;
  ev_name : string;
  span : int;  (** span id (B/E) or enclosing span id (I/X) *)
  parent : int;  (** parent span id (B events; 0 = root) *)
  ts : int;  (** virtual microseconds *)
  dur : int;  (** microseconds, X events only *)
  attrs : attr list;
}

val events : t -> event list
(** In emission order. *)

val open_spans : t -> int
(** Spans currently open (0 after balanced use). *)

val unbalanced : t -> int
(** [span_end] calls that named a span that was not open. *)

val counter_value : t -> string -> int
(** 0 when absent (or not a counter). *)

val gauge_value : t -> string -> float option

val hist_stats : t -> string -> (int * int * int) option
(** [(count, sum, max)] of a histogram. *)

val hist_buckets : t -> string -> (int * int) list
(** Nonzero [(bucket, count)] pairs, ascending. *)

val hist_percentile : t -> string -> float -> float option
(** [hist_percentile t name q] (with [q] in [[0, 1]]) estimates the
    [q]-quantile of a histogram by linear interpolation inside its log2
    bucket, clamped to the exact observed maximum — exact for constant
    distributions, within one bucket otherwise. [None] if the metric is
    absent, empty, or not a histogram. *)

val json_escape : string -> string
(** JSON string-body escaping as every exporter in the plane applies it
    (quotes, backslashes, control bytes); shared by {!Slo}'s journal and
    the fleet night report so all artifacts escape identically. *)

val nat_compare : string -> string -> int
(** Natural (numeric-aware) string order: digit runs compare as numbers,
    so ["drive2"] sorts before ["drive10"]. All listings of metric and
    series names use this order. *)

val series : t -> string -> (float * float) list
(** Points of a time series as [(simulated seconds, value)], in
    recording order. Besides series recorded via {!sample}, per-device
    busy-fraction timelines derived from the recorded device ops are
    available under [dev.<device>.busy]. Empty if the name is unknown. *)

val series_names : t -> string list
(** All series (recorded and derived), in {!nat_compare} order. *)

val series_last : t -> ?at:float -> string -> (float * float) option
(** The newest recorded point of a series, or the newest point at or
    before [at] simulated seconds when given. O(1) for the common
    monotone-append case ({!Slo} polls series this way on every
    scheduler interval); derived [dev.*] series are not consulted. *)

val series_since : t -> t0:float -> string -> (float * float) list
(** Recorded points with timestamp [>= t0], oldest first — the sliding
    window a burn-rate rule evaluates over. Walks newest-first and stops
    at the first point before [t0], so the cost is proportional to the
    window, not the series. *)

val chrome_trace : t -> string
(** The plane as a Chrome [trace_event] JSON object
    ([{"traceEvents":[...]}]). Spans become B/E pairs, instants [i],
    device ops [X]; every event's [args] carry its span id. Spans with a
    [drive] (or nonempty [host]) attribute land on their own thread
    track — named via [thread_name] metadata — so multi-drive runs
    render as parallel lanes; time series render as [C] counter
    tracks. *)

val metrics_jsonl : t -> string
(** One JSON object per line, one line per metric, in {!nat_compare}
    order. Histogram lines carry estimated [p50]/[p95]/[p99]. *)

val series_jsonl : t -> string
(** One JSON object per line, one line per series (recorded and
    derived), in {!nat_compare} order:
    [{"name":...,"type":"series","points":[[t_s,v],...]}]. *)

val pp_summary : Format.formatter -> t -> unit
(** Human table: span and event totals, counters, gauges, histograms
    (with estimated percentiles). *)
