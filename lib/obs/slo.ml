(* Deterministic SLO evaluation and alerting over a recorded or
   recording plane.

   The engine is intentionally dumb: it holds no clock and schedules
   nothing. Whoever owns the simulated timeline (the fleet scheduler's
   interval hook, a post-hoc replay of a finished trace) feeds it
   evaluation instants, and each rule's condition is recomputed from the
   bound plane at that instant. Because the plane is a pure function of
   the workload and the instants are a pure function of the schedule,
   the alert journal is byte-identical across same-seed runs — the same
   contract every exporter in this library carries. *)

type cmp = Above | Below

type condition =
  | Threshold of { metric : string; cmp : cmp; bound : float }
  | Burn_rate of { series : string; window_s : float; cmp : cmp; bound : float }
  | Absence of { metric : string; after_s : float }
  | Deadline of { series : string; target : float; by_s : float }

type rule = { r_name : string; r_condition : condition }

let rule ~name cond = { r_name = name; r_condition = cond }

(* ------------------------------------------------------------------ *)
(* SLO1 rule files                                                     *)

exception Parse_error of { line : int; msg : string }

let fail ~line fmt = Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt
let fnum = Printf.sprintf "%.17g"

let render_rule r =
  match r.r_condition with
  | Threshold { metric; cmp; bound } ->
    Printf.sprintf "threshold %s metric=%s %s=%s" r.r_name metric
      (match cmp with Above -> "above" | Below -> "below")
      (fnum bound)
  | Burn_rate { series; window_s; cmp; bound } ->
    Printf.sprintf "burn %s series=%s window_s=%s %s=%s" r.r_name series
      (fnum window_s)
      (match cmp with Above -> "above" | Below -> "below")
      (fnum bound)
  | Absence { metric; after_s } ->
    Printf.sprintf "absence %s metric=%s after_s=%s" r.r_name metric
      (fnum after_s)
  | Deadline { series; target; by_s } ->
    Printf.sprintf "deadline %s series=%s target=%s by_s=%s" r.r_name series
      (fnum target) (fnum by_s)

let render_rules rs =
  let b = Buffer.create 256 in
  Buffer.add_string b "slo1\n";
  List.iter
    (fun r ->
      Buffer.add_string b (render_rule r);
      Buffer.add_char b '\n')
    rs;
  Buffer.contents b

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_kvs ~line fields =
  List.map
    (fun f ->
      match String.index_opt f '=' with
      | Some i -> (String.sub f 0 i, String.sub f (i + 1) (String.length f - i - 1))
      | None -> fail ~line "expected key=value, got %S" f)
    fields

let str_field ~line kvs k =
  match List.assoc_opt k kvs with
  | Some v when v <> "" -> v
  | Some _ -> fail ~line "field %s is empty" k
  | None -> fail ~line "missing field %s" k

let float_field ~line kvs k =
  let v = str_field ~line kvs k in
  match float_of_string_opt v with
  | Some f when Float.is_finite f -> f
  | _ -> fail ~line "field %s is not a number" k

let cmp_field ~line kvs =
  match (List.assoc_opt "above" kvs, List.assoc_opt "below" kvs) with
  | Some _, Some _ -> fail ~line "give either above= or below=, not both"
  | Some _, None -> (Above, float_field ~line kvs "above")
  | None, Some _ -> (Below, float_field ~line kvs "below")
  | None, None -> fail ~line "missing field above= or below="

let parse_rules text =
  let seen_magic = ref false in
  let rules = ref [] in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let stripped =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match split_words stripped with
      | [] -> ()
      | [ "slo1" ] when not !seen_magic -> seen_magic := true
      | _ when not !seen_magic -> fail ~line "expected the slo1 magic line first"
      | kind :: name :: fields ->
        let kvs = parse_kvs ~line fields in
        let cond =
          match kind with
          | "threshold" ->
            let cmp, bound = cmp_field ~line kvs in
            Threshold { metric = str_field ~line kvs "metric"; cmp; bound }
          | "burn" ->
            let cmp, bound = cmp_field ~line kvs in
            let window_s = float_field ~line kvs "window_s" in
            if window_s <= 0.0 then fail ~line "window_s must be positive";
            Burn_rate { series = str_field ~line kvs "series"; window_s; cmp; bound }
          | "absence" ->
            Absence
              {
                metric = str_field ~line kvs "metric";
                after_s = float_field ~line kvs "after_s";
              }
          | "deadline" ->
            let by_s = float_field ~line kvs "by_s" in
            if by_s < 0.0 then fail ~line "by_s must be nonnegative";
            Deadline
              {
                series = str_field ~line kvs "series";
                target = float_field ~line kvs "target";
                by_s;
              }
          | k -> fail ~line "unknown rule kind %S" k
        in
        rules := { r_name = name; r_condition = cond } :: !rules
      | [ k ] -> fail ~line "rule %S needs a name" k)
    (String.split_on_char '\n' text);
  if not !seen_magic then fail ~line:1 "expected the slo1 magic line first";
  List.rev !rules

(* ------------------------------------------------------------------ *)
(* Alerts and the journal                                              *)

type kind = Firing | Resolved

type alert = { a_rule : string; a_kind : kind; a_t : float; a_value : float }

let kind_name = function Firing -> "firing" | Resolved -> "resolved"

(* %.6g like the plane's exporters; nan/inf are not JSON. *)
let jnum f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_escape = Obs.json_escape

let journal_json alerts =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"journal\":\"SLO1\",\"alerts\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"rule\":\"%s\",\"kind\":\"%s\",\"t_s\":%s,\"value\":%s}"
           (json_escape a.a_rule) (kind_name a.a_kind) (jnum a.a_t)
           (jnum a.a_value)))
    alerts;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_journal ppf alerts =
  if alerts = [] then Format.fprintf ppf "alert journal: empty@."
  else begin
    Format.fprintf ppf "alert journal: %d transitions@." (List.length alerts);
    List.iter
      (fun a ->
        Format.fprintf ppf "  %10.3fs  %-8s %-32s value %.6g@." a.a_t
          (kind_name a.a_kind) a.a_rule a.a_value)
      alerts
  end

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)

type state = { st_rule : rule; mutable st_firing : bool }

type t = {
  plane : Obs.t;
  mutable states : state list;  (** rule order *)
  mutable journal : alert list;  (** newest first *)
}

let create ?(rules = []) plane =
  { plane; states = List.map (fun r -> { st_rule = r; st_firing = false }) rules;
    journal = [] }

let add_rule t r = t.states <- t.states @ [ { st_rule = r; st_firing = false } ]
let rules t = List.map (fun s -> s.st_rule) t.states
let alerts t = List.rev t.journal

let firing t =
  List.filter_map
    (fun s -> if s.st_firing then Some s.st_rule.r_name else None)
    t.states

(* Current value of a metric at [now]: gauge, else the newest series
   point at or before now, else a nonzero counter. Counters report
   their cumulative total — meaningful for threshold rules over e.g.
   fault.injected, where any nonzero count is the signal. *)
(* Series first: a series point is indexed by simulated time, so both
   live evaluation and post-hoc {!replay} read the value as of [now]. A
   gauge only holds its latest value — consulting it before the series
   would make every replayed threshold see the end-of-run state. *)
let value_at plane ~now name =
  match Obs.series_last plane ~at:now name with
  | Some (_, v) -> Some v
  | None -> (
    match Obs.gauge_value plane name with
    | Some v -> Some v
    | None ->
      let c = Obs.counter_value plane name in
      if c <> 0 then Some (Float.of_int c) else None)

let present plane ~now name =
  match value_at plane ~now name with Some _ -> true | None -> false

let compare_to cmp bound v =
  match cmp with Above -> v > bound | Below -> v < bound

(* The condition's truth and the value the journal records for the
   transition. *)
let evaluate plane ~now = function
  | Threshold { metric; cmp; bound } -> (
    match value_at plane ~now metric with
    | Some v -> (compare_to cmp bound v, v)
    | None -> (false, Float.nan))
  | Burn_rate { series; window_s; cmp; bound } -> (
    let pts =
      List.filter
        (fun (ts, _) -> ts <= now +. 1e-12)
        (Obs.series_since plane ~t0:(now -. window_s) series)
    in
    match (pts, List.rev pts) with
    | (t0, v0) :: _, (t1, v1) :: _ when t1 > t0 ->
      let rate = (v1 -. v0) /. (t1 -. t0) in
      (compare_to cmp bound rate, rate)
    | _ -> (false, Float.nan))
  | Absence { metric; after_s } ->
    if present plane ~now metric then (false, 0.0)
    else (now >= after_s, 0.0)
  | Deadline { series; target; by_s } -> (
    match Obs.series_last plane ~at:now series with
    | Some (_, v) when v >= target -> (false, v)
    | Some (_, v) -> (now >= by_s, v)
    | None -> (now >= by_s, 0.0))

let eval t ~now =
  List.iter
    (fun s ->
      let truth, v = evaluate t.plane ~now s.st_rule.r_condition in
      if truth && not s.st_firing then begin
        s.st_firing <- true;
        t.journal <-
          { a_rule = s.st_rule.r_name; a_kind = Firing; a_t = now; a_value = v }
          :: t.journal
      end
      else if (not truth) && s.st_firing then begin
        s.st_firing <- false;
        t.journal <-
          { a_rule = s.st_rule.r_name; a_kind = Resolved; a_t = now; a_value = v }
          :: t.journal
      end)
    t.states

(* Post-hoc evaluation of a finished trace: the instants where a rule
   could change state are the points of the series it references plus
   its own time boundary. Gauges and counters carry no history, so a
   replayed threshold over them is an end-state check — documented in
   docs/SLO.md. *)
let replay ?upto t =
  let times = ref [] in
  let add ts = times := ts :: !times in
  List.iter
    (fun s ->
      match s.st_rule.r_condition with
      | Threshold { metric; _ } | Absence { metric; _ } ->
        List.iter (fun (ts, _) -> add ts) (Obs.series t.plane metric);
        (match s.st_rule.r_condition with
        | Absence { after_s; _ } -> add after_s
        | _ -> ())
      | Burn_rate { series; _ } | Deadline { series; _ } ->
        List.iter (fun (ts, _) -> add ts) (Obs.series t.plane series);
        (match s.st_rule.r_condition with
        | Deadline { by_s; _ } -> add by_s
        | _ -> ()))
    t.states;
  (match upto with Some u -> add u | None -> ());
  let times = List.sort_uniq compare (List.filter (fun ts -> ts >= 0.0) !times) in
  let times =
    match upto with
    | Some u -> List.filter (fun ts -> ts <= u) times
    | None -> times
  in
  List.iter (fun now -> eval t ~now) times

let default_job_rules () =
  [
    rule ~name:"tape-silent"
      (Absence { metric = "tape.write.ops"; after_s = 0.0 });
    rule ~name:"faults-injected"
      (Threshold { metric = "fault.injected"; cmp = Above; bound = 0.0 });
    rule ~name:"retry-budget"
      (Threshold { metric = "fault.retries"; cmp = Above; bound = 3.0 });
  ]

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader for the plane's own artifacts                 *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  (* A recursive-descent parser over the grammar this library's own
     exporters emit (plus whitespace); not a general validator, but it
     rejects anything structurally malformed. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let bad msg = failwith (Printf.sprintf "json: %s at byte %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some got when got = c -> advance ()
      | _ -> bad (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else bad "bad literal"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> bad "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
            (* The exporters only escape control bytes; decode the
               low code points they emit and keep anything else raw. *)
            if !pos + 4 >= n then bad "short \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some cp when cp < 128 -> Buffer.add_char b (Char.chr cp)
            | Some _ -> Buffer.add_string b ("\\u" ^ hex)
            | None -> bad "bad \\u escape");
            pos := !pos + 4
          | _ -> bad "bad escape");
          advance ();
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let numchar = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> numchar c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> bad "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> bad "expected , or }"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> bad "expected , or ]"
          in
          Arr (items [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> bad "empty input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then bad "trailing bytes";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end
