(** Trace analysis: critical path, bottleneck attribution, and resource
    timelines.

    The obs plane records everything needed to diagnose {e why} a run
    took as long as it did — per-part demand vectors, the drive-pool
    schedule, per-resource utilization timelines — but a trace is raw
    evidence. This module turns a recorded plane into the diagnosis the
    source paper draws from its tables: which resource gated the run
    (logical dump at four drives saturates the disks; image dump stays
    tape-limited), through which parts the elapsed time flowed, and what
    each device was doing when.

    Like everything in the plane, analysis is a pure function of the
    recorded trace: identical seeds yield byte-identical reports
    (property-tested in [test/test_analysis.ml]).

    See [docs/OBSERVABILITY.md] section 7 and [docs/FORMATS.md] section
    7 for the report JSON. *)

(** {1 Verdicts} *)

type verdict =
  | Tape_limited
  | Disk_limited
  | Cpu_limited
  | Wire_limited
  | Balanced
      (** No single resource class dominates: the top mean utilization is
          below the attribution threshold, or within the margin of the
          runner-up. *)

val verdict_to_string : verdict -> string
(** ["tape-limited"], ["disk-limited"], ["cpu-limited"],
    ["wire-limited"], ["balanced"]. *)

(** {1 The report} *)

type usage = {
  u_class : string;  (** ["tape"], ["disk"], ["cpu"] or ["wire"] *)
  u_mean : float;  (** mean busy fraction over the phase *)
  u_peak : float;  (** peak sampled busy fraction *)
}

type step = {
  s_part : int;  (** 1-based part number *)
  s_drive : int;
  s_start : float;  (** admission, simulated seconds on the schedule *)
  s_finish : float;
  s_seconds : (string * float) list;
      (** per-resource-class seconds demanded by this part: ["tape"],
          ["disk"], ["cpu"], ["wire"], plus ["backoff"] (retry delays
          recorded inside the part's span) *)
}

type critical_path = {
  cp_steps : step list;  (** chronological, first admitted first *)
  cp_seconds : (string * float) list;
      (** per-class seconds summed along the path *)
  cp_pct : (string * float) list;
      (** the same as percent of phase elapsed *)
}

type phase = {
  p_name : string;  (** ["backup"] or ["restore"] *)
  p_elapsed : float;  (** simulated seconds *)
  p_verdict : verdict;
  p_usage : usage list;  (** fixed class order: tape, disk, cpu, wire *)
  p_path : critical_path option;  (** backup phases only *)
}

type report = { phases : phase list }

(** {1 Analysis} *)

val analyze : Obs.t -> report
(** Analyze a recorded plane. A phase appears for each scheduler
    utilization timeline prefix present ([backup.util.*],
    [restore.util.*] — recorded by the drive-pool scheduler when it runs
    under an armed plane — and [fleet.util.*] from a fleet night, whose
    verdict the night report embeds). Planes recorded without the
    scheduler timelines yield an empty report. *)

val critical_path : Obs.t -> critical_path option
(** The backup-phase critical path alone: starting from the
    last-finishing part ([scheduler.part_done] instants), walk back
    through the parts whose completion gated each admission, and charge
    each step's gating intervals to resource classes from the demand
    vector its span closed with ([demand:<resource>] attributes) plus
    recorded retry backoff. [None] when the trace has no completed
    parts. Exposed separately for unit tests on hand-built span trees. *)

val to_json : report -> string
(** Deterministic JSON rendering (see [docs/FORMATS.md] section 7):
    identical reports produce identical bytes. *)

(** {1 Disaster-recovery drills}

    The replication plane ({!Repro_repl.Repl}) records [repl.rpo_s] and
    [repl.rto_s] gauges at promotion and a [repl.lag_s.<node>] series
    after every transfer; a DR drill's trace therefore carries its own
    measured RPO/RTO, extracted here for the bench gate and
    [backupctl mirror status]. *)

type dr = {
  dr_rpo_s : float;  (** snapshot lag at failure, simulated seconds *)
  dr_rto_s : float;  (** time to a promoted, fsck-clean mount *)
  dr_lag : (string * (float * float) list) list;
      (** per-replica lag timeline, node order by {!Obs.nat_compare} *)
}

val dr : Obs.t -> dr option
(** [None] when the trace holds no promotion. *)

val dr_to_json : dr -> string
(** Deterministic JSON: [{"rpo_s":…,"rto_s":…,"lag":{"B":[[t,s],…]}}]. *)

val series_csv : Obs.t -> string
(** Every series on the plane (recorded and derived, including the
    sampler's [*.util.*] bins) in long CSV format:
    [series,t_s,value] header then one row per point, series in
    {!Obs.nat_compare} order, points in recording order. Deterministic
    bytes for identical planes. *)

(** {1 Utilization sampling}

    The bridge between the scheduler's fluid timeline and the plane's
    series: the scheduler reports each inter-event interval's
    per-resource utilization, the sampler resamples the piecewise
    constant segments into fixed-width bins and records them via
    {!Obs.sample} as [<prefix>.util.<resource>] series. *)

type sampler

val sampler : ?bins:int -> ?t0:float -> prefix:string -> unit -> sampler
(** A fresh sampler. [bins] (default 64) fixed intervals; [t0] (default
    0) offsets recorded sample times, for schedules that run after a
    prior phase on the same plane. *)

val sampler_segment :
  sampler -> t0:float -> t1:float -> (string * float) list -> unit
(** One scheduler interval [[t0, t1)] (schedule-local seconds) with its
    per-resource-key utilizations. Per-part suffixes ([net:host#3]) are
    aggregated by stripping everything from [#]. *)

val sampler_flush : sampler -> unit
(** Resample the accumulated segments into the fixed bins and record
    them as series on the armed plane. No-op if nothing was recorded. *)
