(** The backup engine: the library's front door.

    Owns a file system, a set of tape stackers, the dumpdates database and
    the catalog, and exposes one-call backup and restore under either
    strategy. Snapshot handling follows the paper's practice: every backup
    reads from a snapshot taken for the purpose; logical dumps delete it
    afterwards, physical dumps retain it as the base for the next
    incremental (retiring the previous base once it is no longer needed).

    Multiple backups stack onto one stacker as successive tape streams;
    the catalog records drive and stream indices so restores find their
    media without operator memory.

    {b Resilience.} Each backup attempt runs under a bounded
    exponential-backoff retry ({!Repro_fault.Retry}) absorbing transient
    device errors, with backoff charged to the engine's simulated [clock].
    A job may be split into [parts] independent tape streams; progress is
    checkpointed in the catalog per completed part, so a job killed by a
    hard fault (dead drive, failed disk) resumes with
    [backup ~resume:true], re-dumping only the unfinished parts from the
    {e same} snapshot. A stream the fault cut off mid-write is sealed with
    a filemark so stream addressing stays consistent.

    {b Concurrency.} With [~drives] a multi-part backup schedules its
    parts concurrently across a pool of stackers ({!Scheduler}): real tape
    content per drive is identical to running those parts serially on that
    drive, while elapsed simulated time reflects max-min fair sharing of
    the source disks between in-flight parts — logical dump's inode-order
    reads saturate the array, image dump's sequential reads scale with the
    drives (Tables 4/5). Restores replay each part on the drive that wrote
    it, up to [~concurrency] at a time. {!last_stats} reports the
    schedule's makespan and per-drive busy time. *)

type t

type io_model = {
  logical_read_bytes_s : float;
      (** aggregate array read bandwidth available to a logical dump's
          inode-order reads (the paper's disk-saturation bottleneck) *)
  image_read_bytes_s : float;
      (** same for an image dump's sequential block reads *)
  logical_write_bytes_s : float;  (** restore-side logical write bandwidth *)
  image_write_bytes_s : float;  (** restore-side image write bandwidth *)
  restore_create_latency_s : float;  (** per-file creation cost on restore *)
}
(** The modeled half of a part's demand vector: what the shared source (or
    target) disks can deliver to each access pattern. The measured half —
    tape transfer, real disk service, CPU — comes from {!Repro_sim.Resource}
    busy deltas. *)

val default_io_model : io_model
(** Tuned to the paper's Table 4/5 shape over ~8.5 MB/s DLT7000-class
    drives: logical saturates near 2.75 drives' bandwidth, image feeds four
    drives comfortably. *)

val create :
  ?cpu:Repro_sim.Resource.t ->
  ?costs:Repro_sim.Cost.t ->
  ?clock:Repro_sim.Clock.t ->
  ?retry:Repro_fault.Retry.policy ->
  ?model:io_model ->
  fs:Repro_wafl.Fs.t ->
  libraries:Repro_tape.Library.t list ->
  unit ->
  t
(** [clock] receives the retry backoff delays ({!Repro_fault.Retry.run});
    without one, backoff costs no simulated time. [retry] defaults to
    {!Repro_fault.Retry.default}; [model] to {!default_io_model}. The
    [libraries] are locally attached; see {!attach_remote} for drives on a
    tape server. *)

val fs : t -> Repro_wafl.Fs.t

val remount : t -> unit
(** Replace the engine's file-system handle with a fresh mount of its
    volume (same configuration). Required after a physical image
    restore or a replication resync rewrites the volume underneath the
    mount: the old handle is stale, and saving the store through it
    would overwrite the restored image with stale in-memory state. *)

val catalog : t -> Catalog.t
val dumpdates : t -> Repro_dump.Dumpdates.t

(** {1 Remote tape servers}

    The NDMP-style three-way configuration: stackers that live on a tape
    server reached over a simulated {!Repro_net.Link} rather than cabled
    to the backup host. A remote drive is just another pool slot — parts
    scheduled onto it are shipped record-by-record by the
    {!Mover} through a flow-controlled {!Repro_net.Session}, and restores
    ship the stream back. Byte content on the remote cartridges is
    identical to a local backup's. *)

val attach_remote :
  t ->
  host:string ->
  ?link_params:Repro_net.Link.params ->
  libraries:Repro_tape.Library.t list ->
  unit ->
  int list
(** Attach a tape server's stackers, returning their new drive indices
    (usable anywhere a drive index is: [drives] pools, catalog entries).
    The first attachment to [host] creates its link ([link_params]
    defaulting to {!Repro_net.Link.default_params}); later attachments
    reuse it and must not pass [link_params]. The control session is
    dialed lazily on first use. Raises [Invalid_argument] on an empty
    [host], an empty [libraries], or re-configuring an existing link. *)

val drive_count : t -> int
(** Local and remote attachments together. *)

val drive_host : t -> int -> string
(** [""] for a locally attached drive. *)

val hosts : t -> string list
(** Tape-server hosts, in attachment order. *)

val link_to : t -> host:string -> Repro_net.Link.t option
val remote_drives : t -> host:string -> int list

val last_stats : t -> Scheduler.stats option
(** Drive-pool schedule of the most recent backup or restore: simulated
    makespan and per-drive busy seconds / job counts (summed over a restore
    chain's entries). [None] before any scheduled operation. *)

(** {1 Backup}

    A backup is described by a {!Job.t} — one value carrying the whole
    configuration — and run with {!backup_job}. *)

module Job : sig
  type error =
    | Empty_subtree
    | Relative_subtree of string  (** must start with ['/'] *)
    | Bad_level of int  (** dump levels are 0-9 *)
    | Bad_parts of int  (** at least one part stream *)
    | Empty_pool
    | Duplicate_drive of int

  exception Invalid of error
  (** A malformed job description, rejected by {!make} before anything
      touches the engine — a bad level or an empty subtree fails here
      with a typed error instead of surfacing downstream as a dump or
      scheduler failure. *)

  val error_message : error -> string

  type t = private {
    strategy : Strategy.t;
    level : int;  (** dump level; 0 = full *)
    subtree : string;  (** logical backups only *)
    exclude : Repro_dump.Filter.t option;
    label : string option;  (** catalog label; defaults to the subtree *)
    parts : int;  (** independent tape streams the job is split into *)
    drives : int list option;
        (** the drive pool; [None] means drive 0 for a fresh job and the
            checkpointed pool on resume *)
    resume : bool;
  }

  val make :
    strategy:Strategy.t ->
    ?level:int ->
    ?subtree:string ->
    ?exclude:Repro_dump.Filter.t ->
    ?label:string ->
    ?parts:int ->
    ?drives:int list ->
    ?resume:bool ->
    unit ->
    t
  (** Defaults: level 0, subtree ["/"], one part, no explicit pool, fresh
      (non-resuming) job. Raises {!Invalid} on an empty or relative
      subtree, a level outside 0-9, fewer than one part, or an empty or
      duplicated drive pool. *)

  val label : t -> string
  (** The effective catalog label. *)
end

val backup_job : t -> Job.t -> Catalog.entry
(** Run one backup job. [level] applies as the dump level (a physical
    incremental requires a prior physical backup of the label, else
    [Repro_wafl.Fs.Error]); [subtree] applies to logical backups only (a
    physical dump always captures the volume).

    [parts] splits the job into that many independent tape streams, each a
    self-contained dump of its share (logical: files by inode number mod
    [parts]; physical: contiguous block ranges). Every completed part is
    checkpointed in the catalog. If a hard fault kills the job, the
    exception propagates with the checkpoint (and the job's snapshot) left
    in place; [resume] then picks the job up — level, subtree, parts, the
    drive pool and the dump date come from the checkpoint, only unfinished
    parts are dumped, and the result entry covers the whole job.
    [~resume:true] with no checkpoint for (strategy, label) raises
    [Repro_wafl.Fs.Error]. A fresh job discards any stale checkpoint (and
    its snapshot) for the same key. [exclude] is not checkpointed; pass it
    again on resume.

    [drives] is the pool, local and remote indices alike: parts are
    admitted in order to free drives and run concurrently on simulated
    time. A drive killed by a hard fault ({!Repro_fault.Fault.Drive_dead},
    or {!Repro_fault.Fault.Partitioned} for a remote drive whose link
    hard-partitions) loses only its in-flight part — the rest of the queue
    drains on the surviving drives, every completed part is checkpointed
    with the drive it landed on, and the fault then propagates;
    [~resume:true] re-dumps exactly the unfinished parts. Raises
    [Invalid_argument] on an empty, duplicated or out-of-range pool.

    Transient faults never surface here: each part attempt retries under
    the engine's {!Repro_fault.Retry.policy}, sealing the partial stream
    before each retry — a remote part whose frames exhaust their
    retransmit budget surfaces as transient and retries the same way.
    Dumpdates and the catalog entry are recorded only when the whole job
    completes. *)

(** {1 Restore} *)

val restore :
  t ->
  strategy:Strategy.t ->
  label:string ->
  ?fs:Repro_wafl.Fs.t ->
  ?target:string ->
  ?select:string list ->
  ?volume:Repro_block.Volume.t ->
  ?concurrency:int ->
  unit ->
  [ `Logical of Repro_dump.Restore.apply_result list
  | `Physical of Repro_image.Image_restore.result list ]
(** Replay the restore chain for [label] under either strategy, one
    result per chain entry.

    Logical needs [~target] (the directory restored into) and optionally
    [~fs] (defaults to the engine's file system — pass a scratch one to
    restore elsewhere); [~select] extracts specific paths from the newest
    applicable full dump only. Physical needs [~volume], the (new) volume
    the image chain is replayed onto; mount it afterwards with
    [Repro_wafl.Fs.mount]. Passing [~select] with the physical strategy,
    or omitting a required argument, raises [Invalid_argument].

    Each result sums over its entry's part streams; [concurrency]
    (default 1 — strict part order) lets up to that many parts replay at
    once, each on the drive that wrote it, with entries of the chain still
    applied strictly in order. Streams on a remote drive are shipped back
    over the tape server's session before applying (the three-way restore
    path). Raises [Repro_wafl.Fs.Error] when no backup of [label] exists
    under [strategy]. *)

val restore_logical :
  t ->
  label:string ->
  fs:Repro_wafl.Fs.t ->
  target:string ->
  ?select:string list ->
  ?concurrency:int ->
  unit ->
  Repro_dump.Restore.apply_result list
(** [restore ~strategy:Logical] without the variant wrapping: apply the
    full-plus-incrementals chain for [label] into [target]. [select]
    extracts specific paths from the newest applicable full dump only
    (stupidity recovery does not need the whole chain when the file is on
    the level-0 tape; for files created later, restore the chain without
    [select]). *)

val restore_physical :
  t ->
  label:string ->
  volume:Repro_block.Volume.t ->
  ?concurrency:int ->
  unit ->
  Repro_image.Image_restore.result list
(** [restore ~strategy:Physical] without the variant wrapping: disaster
    recovery, replaying the image chain onto a (new) volume. Mount it
    afterwards with [Repro_wafl.Fs.mount]. *)

val verify_physical : t -> label:string -> (int, string list) result
(** Checksum-verify every stream of the physical chain. *)

val table_of_contents : t -> Catalog.entry -> Repro_dump.Restore.toc_entry list
(** Read the named backup's front matter and list its contents (logical
    dumps only). Multi-part entries are merged: directories appear in
    every part's stream and are reported once. *)

val verify_logical :
  t -> label:string -> fs:Repro_wafl.Fs.t -> target:string -> (unit, string list) result
(** [restore -C]: compare the newest full logical dump of [label] against
    the live tree under [target] without writing anything. Meaningful when
    the tree has not changed since that dump (verify right after backup).
    Multi-part entries compare every part stream. *)

(** {1 Persistence}

    The engine's operational state — stackers with their cartridges, the
    dumpdates database, the catalog with any in-flight checkpoints, stream
    counters — serializes as one blob, so an interrupted job survives a
    process restart and resumes from the reloaded store. The file system's
    volume is saved separately (see {!Repro_block.Persist} and
    {!Store}). The current generation is [RENG4] (links and remote
    attachments included); {!load} also reads [RENG3] and [RENG2] stores,
    whose drives come back locally attached (see docs/FORMATS.md). *)

val save : Repro_util.Serde.writer -> t -> unit

val load :
  ?cpu:Repro_sim.Resource.t ->
  ?costs:Repro_sim.Cost.t ->
  ?clock:Repro_sim.Clock.t ->
  ?retry:Repro_fault.Retry.policy ->
  ?model:io_model ->
  Repro_util.Serde.reader ->
  fs:Repro_wafl.Fs.t ->
  t
