(** The backup engine: the library's front door.

    Owns a file system, a set of tape stackers, the dumpdates database and
    the catalog, and exposes one-call backup and restore under either
    strategy. Snapshot handling follows the paper's practice: every backup
    reads from a snapshot taken for the purpose; logical dumps delete it
    afterwards, physical dumps retain it as the base for the next
    incremental (retiring the previous base once it is no longer needed).

    Multiple backups stack onto one stacker as successive tape streams;
    the catalog records drive and stream indices so restores find their
    media without operator memory.

    {b Resilience.} Each backup attempt runs under a bounded
    exponential-backoff retry ({!Repro_fault.Retry}) absorbing transient
    device errors, with backoff charged to the engine's simulated [clock].
    A job may be split into [parts] independent tape streams; progress is
    checkpointed in the catalog per completed part, so a job killed by a
    hard fault (dead drive, failed disk) resumes with
    [backup ~resume:true], re-dumping only the unfinished parts from the
    {e same} snapshot. A stream the fault cut off mid-write is sealed with
    a filemark so stream addressing stays consistent.

    {b Concurrency.} With [~drives] a multi-part backup schedules its
    parts concurrently across a pool of stackers ({!Scheduler}): real tape
    content per drive is identical to running those parts serially on that
    drive, while elapsed simulated time reflects max-min fair sharing of
    the source disks between in-flight parts — logical dump's inode-order
    reads saturate the array, image dump's sequential reads scale with the
    drives (Tables 4/5). Restores replay each part on the drive that wrote
    it, up to [~concurrency] at a time. {!last_stats} reports the
    schedule's makespan and per-drive busy time. *)

type t

type io_model = {
  logical_read_bytes_s : float;
      (** aggregate array read bandwidth available to a logical dump's
          inode-order reads (the paper's disk-saturation bottleneck) *)
  image_read_bytes_s : float;
      (** same for an image dump's sequential block reads *)
  logical_write_bytes_s : float;  (** restore-side logical write bandwidth *)
  image_write_bytes_s : float;  (** restore-side image write bandwidth *)
  restore_create_latency_s : float;  (** per-file creation cost on restore *)
}
(** The modeled half of a part's demand vector: what the shared source (or
    target) disks can deliver to each access pattern. The measured half —
    tape transfer, real disk service, CPU — comes from {!Repro_sim.Resource}
    busy deltas. *)

val default_io_model : io_model
(** Tuned to the paper's Table 4/5 shape over ~8.5 MB/s DLT7000-class
    drives: logical saturates near 2.75 drives' bandwidth, image feeds four
    drives comfortably. *)

val create :
  ?cpu:Repro_sim.Resource.t ->
  ?costs:Repro_sim.Cost.t ->
  ?clock:Repro_sim.Clock.t ->
  ?retry:Repro_fault.Retry.policy ->
  ?model:io_model ->
  fs:Repro_wafl.Fs.t ->
  libraries:Repro_tape.Library.t list ->
  unit ->
  t
(** [clock] receives the retry backoff delays ({!Repro_fault.Retry.run});
    without one, backoff costs no simulated time. [retry] defaults to
    {!Repro_fault.Retry.default}; [model] to {!default_io_model}. *)

val fs : t -> Repro_wafl.Fs.t
val catalog : t -> Catalog.t
val dumpdates : t -> Repro_dump.Dumpdates.t

val last_stats : t -> Scheduler.stats option
(** Drive-pool schedule of the most recent backup or restore: simulated
    makespan and per-drive busy seconds / job counts (summed over a restore
    chain's entries). [None] before any scheduled operation. *)

val backup :
  t ->
  strategy:Strategy.t ->
  ?level:int ->
  ?subtree:string ->
  ?exclude:Repro_dump.Filter.t ->
  ?drive:int ->
  ?drives:int list ->
  ?label:string ->
  ?parts:int ->
  ?resume:bool ->
  unit ->
  Catalog.entry
(** [level] defaults to 0 (full). [subtree] defaults to ["/"] and applies
    to logical backups only (a physical dump always captures the volume).
    [label] defaults to the subtree. Raises [Repro_wafl.Fs.Error] on a
    level->0 physical incremental with no prior full, or an invalid
    subtree.

    [parts] (default 1) splits the job into that many independent tape
    streams, each a self-contained dump of its share (logical: files by
    inode number mod [parts]; physical: contiguous block ranges). Every
    completed part is checkpointed in the catalog. If a hard fault kills
    the job, the exception propagates with the checkpoint (and the job's
    snapshot) left in place; [resume] then picks the job up — [level],
    [subtree], [parts], the drive pool and the dump date come from the
    checkpoint, only unfinished parts are dumped, and the result entry
    covers the whole job. [~resume:true] with no checkpoint for
    (strategy, label) raises [Repro_wafl.Fs.Error]. A fresh backup
    discards any stale checkpoint (and its snapshot) for the same key.
    [exclude] is not checkpointed; pass it again on resume.

    [drives] (default [[drive]]) is the pool: parts are admitted in order
    to free drives and run concurrently on simulated time. A drive killed
    by a hard fault ({!Repro_fault.Fault.Drive_dead}) loses only its
    in-flight part — the rest of the queue drains on the surviving drives,
    every completed part is checkpointed with the drive it landed on, and
    the fault then propagates; [~resume:true] re-dumps exactly the
    unfinished parts. Raises [Invalid_argument] on an empty, duplicated or
    out-of-range pool.

    Transient faults never surface here: each part attempt retries under
    the engine's {!Repro_fault.Retry.policy}, sealing the partial stream
    before each retry. Dumpdates and the catalog entry are recorded only
    when the whole job completes. *)

val restore_logical :
  t ->
  label:string ->
  fs:Repro_wafl.Fs.t ->
  target:string ->
  ?select:string list ->
  ?concurrency:int ->
  unit ->
  Repro_dump.Restore.apply_result list
(** Apply the full-plus-incrementals chain for [label] into
    [target]. [select] extracts specific paths from the newest applicable
    full dump only (stupidity recovery does not need the whole chain when
    the file is on the level-0 tape; for files created later, restore the
    chain without [select]). Each result sums over the entry's part
    streams; [concurrency] (default 1 — strict part order) lets up to that
    many parts replay at once, each on the drive that wrote it, with
    entries of the chain still applied strictly in order. *)

val restore_physical :
  t ->
  label:string ->
  volume:Repro_block.Volume.t ->
  ?concurrency:int ->
  unit ->
  Repro_image.Image_restore.result list
(** Disaster recovery: replay the image chain onto a (new) volume. Mount
    it afterwards with [Repro_wafl.Fs.mount]. Each result sums over the
    entry's part streams; [concurrency] as in {!restore_logical}. *)

val verify_physical : t -> label:string -> (int, string list) result
(** Checksum-verify every stream of the physical chain. *)

val table_of_contents : t -> Catalog.entry -> Repro_dump.Restore.toc_entry list
(** Read the named backup's front matter and list its contents (logical
    dumps only). Multi-part entries are merged: directories appear in
    every part's stream and are reported once. *)

val verify_logical :
  t -> label:string -> fs:Repro_wafl.Fs.t -> target:string -> (unit, string list) result
(** [restore -C]: compare the newest full logical dump of [label] against
    the live tree under [target] without writing anything. Meaningful when
    the tree has not changed since that dump (verify right after backup).
    Multi-part entries compare every part stream. *)

(** {1 Persistence}

    The engine's operational state — stackers with their cartridges, the
    dumpdates database, the catalog with any in-flight checkpoints, stream
    counters — serializes as one blob, so an interrupted job survives a
    process restart and resumes from the reloaded store. The file system's
    volume is saved separately (see {!Repro_block.Persist} and
    {!Store}). *)

val save : Repro_util.Serde.writer -> t -> unit

val load :
  ?cpu:Repro_sim.Resource.t ->
  ?costs:Repro_sim.Cost.t ->
  ?clock:Repro_sim.Clock.t ->
  ?retry:Repro_fault.Retry.policy ->
  ?model:io_model ->
  Repro_util.Serde.reader ->
  fs:Repro_wafl.Fs.t ->
  t
