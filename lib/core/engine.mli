(** The backup engine: the library's front door.

    Owns a file system, a set of tape stackers, the dumpdates database and
    the catalog, and exposes one-call backup and restore under either
    strategy. Snapshot handling follows the paper's practice: every backup
    reads from a snapshot taken for the purpose; logical dumps delete it
    afterwards, physical dumps retain it as the base for the next
    incremental (retiring the previous base once it is no longer needed).

    Multiple backups stack onto one stacker as successive tape streams;
    the catalog records drive and stream indices so restores find their
    media without operator memory. *)

type t

val create :
  ?cpu:Repro_sim.Resource.t ->
  ?costs:Repro_sim.Cost.t ->
  fs:Repro_wafl.Fs.t ->
  libraries:Repro_tape.Library.t list ->
  unit ->
  t

val fs : t -> Repro_wafl.Fs.t
val catalog : t -> Catalog.t
val dumpdates : t -> Repro_dump.Dumpdates.t

val backup :
  t ->
  strategy:Strategy.t ->
  ?level:int ->
  ?subtree:string ->
  ?exclude:Repro_dump.Filter.t ->
  ?drive:int ->
  ?label:string ->
  unit ->
  Catalog.entry
(** [level] defaults to 0 (full). [subtree] defaults to ["/"] and applies
    to logical backups only (a physical dump always captures the volume).
    [label] defaults to the subtree. Raises [Repro_wafl.Fs.Error] on a
    level->0 physical incremental with no prior full, or an invalid
    subtree. *)

val restore_logical :
  t ->
  label:string ->
  fs:Repro_wafl.Fs.t ->
  target:string ->
  ?select:string list ->
  unit ->
  Repro_dump.Restore.apply_result list
(** Apply the full-plus-incrementals chain for [label] into
    [target]. [select] extracts specific paths from the newest applicable
    full dump only (stupidity recovery does not need the whole chain when
    the file is on the level-0 tape; for files created later, restore the
    chain without [select]). *)

val restore_physical :
  t ->
  label:string ->
  volume:Repro_block.Volume.t ->
  unit ->
  Repro_image.Image_restore.result list
(** Disaster recovery: replay the image chain onto a (new) volume. Mount
    it afterwards with [Repro_wafl.Fs.mount]. *)

val verify_physical : t -> label:string -> (int, string list) result
(** Checksum-verify every stream of the physical chain. *)

val table_of_contents : t -> Catalog.entry -> Repro_dump.Restore.toc_entry list
(** Read the named stream's front matter and list its contents (logical
    dumps only). *)

val verify_logical :
  t -> label:string -> fs:Repro_wafl.Fs.t -> target:string -> (unit, string list) result
(** [restore -C]: compare the newest full logical dump of [label] against
    the live tree under [target] without writing anything. Meaningful when
    the tree has not changed since that dump (verify right after backup). *)

(** {1 Persistence}

    The engine's operational state — stackers with their cartridges, the
    dumpdates database, the catalog, stream counters — serializes as one
    blob. The file system's volume is saved separately (see
    {!Repro_block.Persist} and {!Store}). *)

val save : Repro_util.Serde.writer -> t -> unit
val load :
  ?cpu:Repro_sim.Resource.t ->
  ?costs:Repro_sim.Cost.t ->
  Repro_util.Serde.reader ->
  fs:Repro_wafl.Fs.t ->
  t
