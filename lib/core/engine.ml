module Resource = Repro_sim.Resource
module Cost = Repro_sim.Cost
module Clock = Repro_sim.Clock
module Fs = Repro_wafl.Fs
module Fsinfo = Repro_wafl.Fsinfo
module Library = Repro_tape.Library
module Tape = Repro_tape.Tape
module Tapeio = Repro_tape.Tapeio
module Dump = Repro_dump.Dump
module Restore = Repro_dump.Restore
module Dumpdates = Repro_dump.Dumpdates
module Filter = Repro_dump.Filter
module Image_dump = Repro_image.Image_dump
module Image_restore = Repro_image.Image_restore
module Retry = Repro_fault.Retry
module Obs = Repro_obs.Obs

type t = {
  e_fs : Fs.t;
  libs : Library.t array;
  dd : Dumpdates.t;
  cat : Catalog.t;
  cpu : Resource.t option;
  costs : Cost.t;
  clock : Clock.t option;
  retry : Retry.policy;
  streams : int array; (* streams written per drive *)
  mutable snap_seq : int;
}

let create ?cpu ?(costs = Cost.f630) ?clock ?(retry = Retry.default) ~fs ~libraries ()
    =
  if libraries = [] then invalid_arg "Engine.create: no tape libraries";
  {
    e_fs = fs;
    libs = Array.of_list libraries;
    dd = Dumpdates.create ();
    cat = Catalog.create ();
    cpu;
    costs;
    clock;
    retry;
    streams = Array.make (List.length libraries) 0;
    snap_seq = 0;
  }

let fs t = t.e_fs
let catalog t = t.cat
let dumpdates t = t.dd

let charge_backoff t secs =
  match t.clock with Some c -> Clock.advance c secs | None -> ()

let media_of lib before =
  let all = List.map Tape.media_label (Library.used_media lib) in
  List.filter (fun m -> not (List.mem m before)) all

let snapshot_exists t name =
  List.exists
    (fun (s : Fsinfo.snap_entry) -> String.equal s.snap_name name)
    (Fs.snapshot_entries t.e_fs)

let last_physical_snapshot t ~label =
  match
    List.rev
      (List.filter
         (fun (e : Catalog.entry) ->
           e.Catalog.strategy = Strategy.Physical && String.equal e.Catalog.label label)
         (Catalog.entries t.cat))
  with
  | e :: _ -> Some e.Catalog.snapshot
  | [] -> None

(* Position the stacker to append: locate end of data (a read may have
   left the drive mid-tape, and writing there would truncate every stream
   beyond it). An interrupted dump additionally leaves the last cartridge
   ending in a data record with no filemark: seal it so the garbage
   occupies a stream index of its own and every later stream keeps clean
   filemark addressing. *)
let seal_dangling t ~drive =
  let lib = t.libs.(drive) in
  Library.ensure_appendable lib;
  let d = Library.drive lib in
  (match Tape.loaded d with Some _ -> Tape.seek_end d | None -> ());
  if Library.dangling_stream lib then begin
    Tape.write_filemark d;
    t.streams.(drive) <- t.streams.(drive) + 1
  end

(* Build the checkpoint describing a fresh job, creating its snapshot; a
   stale checkpoint for the same (strategy, label) is an abandoned job —
   discard it along with its snapshot. *)
let fresh_checkpoint t ~strategy ~level ~subtree ~drive ~label ~parts =
  (match Catalog.find_checkpoint t.cat ~strategy ~label with
  | Some stale ->
    if stale.Catalog.ck_snapshot <> "" && snapshot_exists t stale.Catalog.ck_snapshot
    then Fs.snapshot_delete t.e_fs stale.Catalog.ck_snapshot;
    Catalog.clear_checkpoint t.cat ~strategy ~label
  | None -> ());
  let date = Fs.now t.e_fs in
  t.snap_seq <- t.snap_seq + 1;
  let snapshot_create name =
    Obs.with_span "creating snapshot"
      ~attrs:[ ("snapshot", Obs.Str name) ]
      (fun () -> Fs.snapshot_create t.e_fs name)
  in
  let snap, base =
    match strategy with
    | Strategy.Logical ->
      let snap = Printf.sprintf "dump.%d" t.snap_seq in
      snapshot_create snap;
      (snap, "")
    | Strategy.Physical ->
      let snap = Printf.sprintf "image.%d" t.snap_seq in
      snapshot_create snap;
      if level = 0 then (snap, "")
      else (
        match last_physical_snapshot t ~label with
        | Some b -> (snap, b)
        | None ->
          Fs.snapshot_delete t.e_fs snap;
          raise (Fs.Error "physical incremental requires a prior physical backup"))
  in
  {
    Catalog.ck_strategy = strategy;
    ck_label = label;
    ck_level = level;
    ck_date = date;
    ck_subtree = subtree;
    ck_drive = drive;
    ck_parts = parts;
    ck_snapshot = snap;
    ck_base_snapshot = base;
    ck_media = [];
    ck_done = [];
  }

let do_backup t ~strategy ~level ~subtree ?exclude ~drive ~label ~parts ~resume
    () =
  if parts < 1 then invalid_arg "Engine.backup: parts must be >= 1";
  let ck =
    if resume then (
      match Catalog.find_checkpoint t.cat ~strategy ~label with
      | Some ck -> ck
      | None ->
        raise (Fs.Error (Printf.sprintf "no interrupted backup of %S to resume" label)))
    else fresh_checkpoint t ~strategy ~level ~subtree ~drive ~label ~parts
  in
  Catalog.set_checkpoint t.cat ck;
  let level = ck.Catalog.ck_level in
  let subtree = ck.Catalog.ck_subtree in
  let drive = ck.Catalog.ck_drive in
  let parts = ck.Catalog.ck_parts in
  let date = ck.Catalog.ck_date in
  Obs.annotate
    [
      ("level", Obs.Int level);
      ("parts", Obs.Int parts);
      ("snapshot", Obs.Str ck.Catalog.ck_snapshot);
    ];
  let lib = t.libs.(drive) in
  (* Seal whatever stream the interrupting fault cut off. *)
  seal_dangling t ~drive;
  let media_before = List.map Tape.media_label (Library.used_media lib) in
  let done_parts = ref ck.Catalog.ck_done in
  let media_acc = ref ck.Catalog.ck_media in
  let merge_media () =
    List.iter
      (fun m -> if not (List.mem m !media_acc) then media_acc := !media_acc @ [ m ])
      (media_of lib media_before)
  in
  let save_checkpoint () =
    Catalog.set_checkpoint t.cat
      { ck with Catalog.ck_done = !done_parts; ck_media = !media_acc }
  in
  let is_done p =
    List.exists (fun (d : Catalog.part_done) -> d.Catalog.part = p) !done_parts
  in
  let run_part p =
    Obs.with_span "part"
      ~attrs:[ ("part", Obs.Int (p + 1)); ("parts", Obs.Int parts) ]
    @@ fun () ->
    let bytes, degraded =
      Retry.run ~policy:t.retry
        ~charge:(charge_backoff t)
        ~cleanup:(fun _ -> seal_dangling t ~drive)
        ~label:(Printf.sprintf "%s part %d/%d" label (p + 1) parts)
        (fun () ->
          let sink = Tapeio.sink lib in
          match strategy with
          | Strategy.Logical ->
            let view = Fs.snapshot_view t.e_fs ck.Catalog.ck_snapshot in
            let r =
              Dump.run ~level ~dumpdates:t.dd ~record:false ?exclude ?cpu:t.cpu
                ~costs:t.costs ~part:(p, parts) ~view ~subtree ~label ~date ~sink ()
            in
            (r.Dump.bytes_written, r.Dump.files_skipped)
          | Strategy.Physical ->
            let r =
              if ck.Catalog.ck_base_snapshot = "" then
                Image_dump.full ?cpu:t.cpu ~costs:t.costs ~part:(p, parts) ~fs:t.e_fs
                  ~snapshot:ck.Catalog.ck_snapshot ~sink ()
              else
                Image_dump.incremental ?cpu:t.cpu ~costs:t.costs ~part:(p, parts)
                  ~fs:t.e_fs ~base:ck.Catalog.ck_base_snapshot
                  ~snapshot:ck.Catalog.ck_snapshot ~sink ()
            in
            (r.Image_dump.bytes_written, 0))
    in
    let stream = t.streams.(drive) in
    t.streams.(drive) <- stream + 1;
    done_parts :=
      List.sort
        (fun (a : Catalog.part_done) b -> compare a.Catalog.part b.Catalog.part)
        ({ Catalog.part = p; stream; bytes; degraded } :: !done_parts);
    merge_media ();
    save_checkpoint ()
  in
  (try
     for p = 0 to parts - 1 do
       if not (is_done p) then run_part p
     done
   with e ->
     (* A hard fault: persist what completed (and the cartridges touched)
        so [backup ~resume:true] re-dumps only the unfinished parts. *)
     merge_media ();
     save_checkpoint ();
     raise e);
  let done_list = !done_parts in
  let streams = List.map (fun (d : Catalog.part_done) -> d.Catalog.stream) done_list in
  let bytes = List.fold_left (fun a (d : Catalog.part_done) -> a + d.Catalog.bytes) 0 done_list in
  let degraded =
    List.fold_left (fun a (d : Catalog.part_done) -> a + d.Catalog.degraded) 0 done_list
  in
  Catalog.clear_checkpoint t.cat ~strategy ~label;
  let snapshot_delete name =
    Obs.with_span "deleting snapshot"
      ~attrs:[ ("snapshot", Obs.Str name) ]
      (fun () -> Fs.snapshot_delete t.e_fs name)
  in
  (match strategy with
  | Strategy.Logical ->
    snapshot_delete ck.Catalog.ck_snapshot;
    (* Recorded only now, with every part sealed: a job that failed midway
       must not make the next incremental's base date lie. *)
    Dumpdates.record t.dd ~label ~level ~date
  | Strategy.Physical ->
    (* The old base has served its purpose; the new snapshot anchors the
       next incremental. *)
    if ck.Catalog.ck_base_snapshot <> "" then
      snapshot_delete ck.Catalog.ck_base_snapshot);
  Catalog.add t.cat
    {
      Catalog.id = 0;
      strategy;
      label;
      level;
      date;
      bytes;
      drive;
      stream = (match streams with s :: _ -> s | [] -> 0);
      streams;
      media = !media_acc;
      snapshot =
        (match strategy with
        | Strategy.Logical -> ""
        | Strategy.Physical -> ck.Catalog.ck_snapshot);
      base_snapshot = ck.Catalog.ck_base_snapshot;
      degraded;
    }

let backup t ~strategy ?(level = 0) ?(subtree = "/") ?exclude ?(drive = 0)
    ?label ?(parts = 1) ?(resume = false) () =
  let label = match label with Some l -> l | None -> subtree in
  Obs.with_span "engine.backup"
    ~attrs:
      [
        ("strategy", Obs.Str (Strategy.to_string strategy));
        ("label", Obs.Str label);
        ("resume", Obs.Bool resume);
      ]
    (fun () ->
      let entry =
        do_backup t ~strategy ~level ~subtree ?exclude ~drive ~label ~parts
          ~resume ()
      in
      Obs.set_gauge "fs.used_blocks" (Float.of_int (Fs.used_blocks t.e_fs));
      Obs.set_gauge "fs.free_blocks" (Float.of_int (Fs.free_blocks t.e_fs));
      entry)

let source_at t (e : Catalog.entry) stream =
  Tapeio.source ~skip_streams:stream t.libs.(e.Catalog.drive)

(* Run [f] over each of the entry's part streams in part order, merging
   with [merge]. Sources are created one at a time: each creation rewinds
   the shared stacker. *)
let over_streams t (e : Catalog.entry) ~f ~merge ~zero =
  List.fold_left (fun acc s -> merge acc (f (source_at t e s))) zero e.Catalog.streams

let sum_apply =
  List.fold_left
    (fun (acc : Restore.apply_result) (r : Restore.apply_result) ->
      {
        Restore.files_restored = acc.files_restored + r.files_restored;
        dirs_created = acc.dirs_created + r.dirs_created;
        files_deleted = acc.files_deleted + r.files_deleted;
        renames = acc.renames + r.renames;
        bytes_restored = acc.bytes_restored + r.bytes_restored;
        corrupt_headers_skipped = acc.corrupt_headers_skipped + r.corrupt_headers_skipped;
      })
    {
      Restore.files_restored = 0;
      dirs_created = 0;
      files_deleted = 0;
      renames = 0;
      bytes_restored = 0;
      corrupt_headers_skipped = 0;
    }

let apply_entry t session ?select (e : Catalog.entry) =
  sum_apply
    (over_streams t e
       ~f:(fun src -> [ Restore.apply ?select session src ])
       ~merge:(fun a b -> a @ b)
       ~zero:[])

let restore_logical t ~label ~fs ~target ?select () =
  Obs.with_span "engine.restore"
    ~attrs:[ ("strategy", Obs.Str "logical"); ("label", Obs.Str label) ]
  @@ fun () ->
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Logical with
  | [] -> raise (Fs.Error (Printf.sprintf "no logical backups of %S" label))
  | chain ->
    let session = Restore.session ?cpu:t.cpu ~costs:t.costs ~fs ~target () in
    (match select with
    | Some _ ->
      (* Selective extraction reads only the newest full dump. *)
      let full = List.hd chain in
      [ apply_entry t session ?select full ]
    | None -> List.map (fun e -> apply_entry t session e) chain)

let restore_physical t ~label ~volume () =
  Obs.with_span "engine.restore"
    ~attrs:[ ("strategy", Obs.Str "physical"); ("label", Obs.Str label) ]
  @@ fun () ->
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Physical with
  | [] -> raise (Fs.Error (Printf.sprintf "no physical backups of %S" label))
  | chain ->
    List.map
      (fun e ->
        let rs =
          over_streams t e
            ~f:(fun src ->
              [ Image_restore.apply ?cpu:t.cpu ~costs:t.costs ~volume src ])
            ~merge:(fun a b -> a @ b)
            ~zero:[]
        in
        match rs with
        | [] -> assert false
        | first :: _ ->
          {
            first with
            Image_restore.blocks_restored =
              List.fold_left (fun a r -> a + r.Image_restore.blocks_restored) 0 rs;
            bytes_read =
              List.fold_left (fun a r -> a + r.Image_restore.bytes_read) 0 rs;
          })
      chain

let table_of_contents t (e : Catalog.entry) =
  (* Every part carries all directories; dedupe by inode across parts. *)
  let seen = Hashtbl.create 256 in
  over_streams t e
    ~f:(fun src ->
      List.filter
        (fun (te : Restore.toc_entry) ->
          if Hashtbl.mem seen te.Restore.ino then false
          else begin
            Hashtbl.add seen te.Restore.ino ();
            true
          end)
        (Restore.table_of_contents src))
    ~merge:(fun a b -> a @ b)
    ~zero:[]

let merge_verdicts a b =
  match (a, b) with
  | Ok (), Ok () -> Ok ()
  | (Error _ as e), Ok () | Ok (), (Error _ as e) -> e
  | Error p, Error q -> Error (p @ q)

let verify_logical t ~label ~fs ~target =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Logical with
  | [] -> Error [ Printf.sprintf "no logical backups of %S" label ]
  | full :: _ ->
    over_streams t full
      ~f:(fun src -> Restore.compare ~fs ~target src)
      ~merge:merge_verdicts ~zero:(Ok ())

let save w t =
  let open Repro_util.Serde in
  write_fixed w "RENG2";
  write_u16 w (Array.length t.libs);
  Array.iter (fun lib -> Library.save w lib) t.libs;
  Array.iter (fun s -> write_u32 w s) t.streams;
  write_string w (Dumpdates.encode t.dd);
  write_string w (Catalog.encode t.cat);
  write_u32 w t.snap_seq

let load ?cpu ?(costs = Cost.f630) ?clock ?(retry = Retry.default) r ~fs =
  let open Repro_util.Serde in
  expect_magic r "RENG2";
  let nlibs = read_u16 r in
  let libs = Array.init nlibs (fun _ -> Library.load r) in
  let streams = Array.init nlibs (fun _ -> read_u32 r) in
  let dd = Dumpdates.decode (read_string r) in
  let cat = Catalog.decode (read_string r) in
  let snap_seq = read_u32 r in
  { e_fs = fs; libs; dd; cat; cpu; costs; clock; retry; streams; snap_seq }

let verify_physical t ~label =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Physical with
  | [] -> Error [ Printf.sprintf "no physical backups of %S" label ]
  | chain ->
    List.fold_left
      (fun acc e ->
        over_streams t e
          ~f:(fun src -> Image_restore.verify src)
          ~merge:(fun a b ->
            match (a, b) with
            | Ok n, Ok m -> Ok (n + m)
            | Ok _, Error p | Error p, Ok _ -> Error p
            | Error p, Error q -> Error (p @ q))
          ~zero:acc)
      (Ok 0) chain
