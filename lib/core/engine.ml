module Resource = Repro_sim.Resource
module Cost = Repro_sim.Cost
module Clock = Repro_sim.Clock
module Fs = Repro_wafl.Fs
module Fsinfo = Repro_wafl.Fsinfo
module Volume = Repro_block.Volume
module Library = Repro_tape.Library
module Tape = Repro_tape.Tape
module Tapeio = Repro_tape.Tapeio
module Dump = Repro_dump.Dump
module Restore = Repro_dump.Restore
module Dumpdates = Repro_dump.Dumpdates
module Filter = Repro_dump.Filter
module Image_dump = Repro_image.Image_dump
module Image_restore = Repro_image.Image_restore
module Retry = Repro_fault.Retry
module Obs = Repro_obs.Obs
module Analysis = Repro_obs.Analysis
module Link = Repro_net.Link
module Session = Repro_net.Session

type io_model = {
  logical_read_bytes_s : float;
  image_read_bytes_s : float;
  logical_write_bytes_s : float;
  image_write_bytes_s : float;
  restore_create_latency_s : float;
}

(* Tuned against the paper's Table 4/5 shape over a DLT7000-class drive
   (~8.5 MB/s with compression): a logical dump's inode-order reads pull
   ~2.75 drives' worth of bandwidth from the array before the disks
   saturate, while an image dump's sequential reads comfortably feed four
   drives. *)
let default_io_model =
  {
    logical_read_bytes_s = 23.4e6;
    image_read_bytes_s = 100e6;
    logical_write_bytes_s = 23.4e6;
    image_write_bytes_s = 100e6;
    restore_create_latency_s = 0.0025;
  }

(* One drive slot in the pool: a stacker plus where it lives. A local
   attachment ([att_host = ""]) is cabled to the backup host; a remote one
   sits on a tape server reached over that host's link. *)
type attachment = { att_lib : Library.t; att_host : string }

type t = {
  mutable e_fs : Fs.t;
  mutable atts : attachment array;
  mutable links : (string * Link.t) list; (* host -> link, attach order *)
  mutable sessions : (string * Session.t) list; (* connected lazily *)
  dd : Dumpdates.t;
  cat : Catalog.t;
  cpu : Resource.t option;
  costs : Cost.t;
  clock : Clock.t option;
  retry : Retry.policy;
  model : io_model;
  mutable streams : int array; (* streams written per drive *)
  mutable snap_seq : int;
  mutable stats : Scheduler.stats option;
}

let create ?cpu ?(costs = Cost.f630) ?clock ?(retry = Retry.default)
    ?(model = default_io_model) ~fs ~libraries () =
  if libraries = [] then invalid_arg "Engine.create: no tape libraries";
  {
    e_fs = fs;
    atts =
      Array.of_list
        (List.map (fun l -> { att_lib = l; att_host = "" }) libraries);
    links = [];
    sessions = [];
    dd = Dumpdates.create ();
    cat = Catalog.create ();
    cpu;
    costs;
    clock;
    retry;
    model;
    streams = Array.make (List.length libraries) 0;
    snap_seq = 0;
    stats = None;
  }

let fs t = t.e_fs

(* After a physical restore/resync rewrites the volume underneath the
   mounted file system, the old handle is stale — and Store.save's CP
   through it would clobber the restored image. *)
let remount t =
  t.e_fs <- Fs.mount ~config:(Fs.config_of t.e_fs) (Fs.volume t.e_fs)

let catalog t = t.cat
let dumpdates t = t.dd
let last_stats t = t.stats
let drive_count t = Array.length t.atts
let lib_of t drive = t.atts.(drive).att_lib
let drive_host t drive = t.atts.(drive).att_host
let hosts t = List.map fst t.links
let link_to t ~host = List.assoc_opt host t.links

let remote_drives t ~host =
  List.filter
    (fun d -> String.equal t.atts.(d).att_host host)
    (List.init (Array.length t.atts) Fun.id)

let attach_remote t ~host ?link_params ~libraries () =
  if host = "" then invalid_arg "Engine.attach_remote: empty host";
  if libraries = [] then invalid_arg "Engine.attach_remote: no tape libraries";
  (match (List.assoc_opt host t.links, link_params) with
  | Some _, Some _ ->
    invalid_arg
      (Printf.sprintf "Engine.attach_remote: link to %S already configured"
         host)
  | Some _, None -> ()
  | None, p -> t.links <- t.links @ [ (host, Link.create ?params:p ~label:host ()) ]);
  let base = Array.length t.atts in
  let added =
    Array.of_list (List.map (fun l -> { att_lib = l; att_host = host }) libraries)
  in
  t.atts <- Array.append t.atts added;
  t.streams <- Array.append t.streams (Array.make (Array.length added) 0);
  List.init (Array.length added) (fun i -> base + i)

(* The control connection to a tape server, dialed on first use and kept
   for the engine's lifetime (data streams come and go per part). *)
let session_for t host =
  match List.assoc_opt host t.sessions with
  | Some s -> s
  | None ->
    let s = Session.connect ~host (List.assoc host t.links) in
    t.sessions <- t.sessions @ [ (host, s) ];
    s

(* The wall time a part's shipment spent on the wire, as a demand on a
   key unique to this part: window/latency stalls are real elapsed time
   even when the link's measured busy-seconds are low. *)
let net_demand ~host ~part shipment =
  match Option.bind shipment Mover.xfer with
  | None -> []
  | Some x ->
    [
      Scheduler.demand
        (Scheduler.Resource_id.Net { host; part })
        x.Session.xf_elapsed_s;
    ]

let note_stats t s =
  let merged =
    match t.stats with
    | None -> s
    | Some prev ->
      let per_drive =
        List.fold_left
          (fun acc (d, b, n) ->
            match List.partition (fun (d', _, _) -> d' = d) acc with
            | [ (_, b0, n0) ], rest -> rest @ [ (d, b0 +. b, n0 + n) ]
            | _ -> acc @ [ (d, b, n) ])
          prev.Scheduler.per_drive s.Scheduler.per_drive
      in
      {
        Scheduler.elapsed = prev.Scheduler.elapsed +. s.Scheduler.elapsed;
        per_drive;
      }
  in
  t.stats <- Some merged

let charge_backoff t secs =
  match t.clock with Some c -> Clock.advance c secs | None -> ()

let media_of lib before =
  let all = List.map Tape.media_label (Library.used_media lib) in
  List.filter (fun m -> not (List.mem m before)) all

(* Busy-time deltas on [resources] across [f]: the measured half of a
   part's demand vector (tape transfer, CPU). The execution itself is
   atomic on simulated time, so the deltas are attributable to this part
   alone. The source/target disks are deliberately NOT measured: the
   per-block service model over-serializes what is really an array behind
   a buffer cache, so disk contention enters the vector only through the
   modeled [io_model] demand on the shared volume key. *)
let with_measured resources f =
  let before = List.map (fun r -> (r, Resource.busy r)) resources in
  let v = f () in
  let ds =
    List.map
      (fun (r, b) ->
        Scheduler.demand_of_resource r (Float.max 0.0 (Resource.busy r -. b)))
      before
  in
  (v, ds)

let part_resources t ~drive =
  (match t.cpu with Some c -> [ c ] | None -> [])
  @ [ Tape.resource (Library.drive (lib_of t drive)) ]
  @ (match link_to t ~host:(drive_host t drive) with
    | Some link -> [ Link.resource link ]
    | None -> [])

let snapshot_exists t name =
  List.exists
    (fun (s : Fsinfo.snap_entry) -> String.equal s.snap_name name)
    (Fs.snapshot_entries t.e_fs)

let last_physical_snapshot t ~label =
  match
    List.rev
      (List.filter
         (fun (e : Catalog.entry) ->
           e.Catalog.strategy = Strategy.Physical && String.equal e.Catalog.label label)
         (Catalog.entries t.cat))
  with
  | e :: _ -> Some e.Catalog.snapshot
  | [] -> None

(* Position the stacker to append: locate end of data (a read may have
   left the drive mid-tape, and writing there would truncate every stream
   beyond it). An interrupted dump additionally leaves the last cartridge
   ending in a data record with no filemark: seal it so the garbage
   occupies a stream index of its own and every later stream keeps clean
   filemark addressing. *)
let seal_dangling t ~drive =
  let lib = lib_of t drive in
  Library.ensure_appendable lib;
  let d = Library.drive lib in
  (match Tape.loaded d with Some _ -> Tape.seek_end d | None -> ());
  if Library.dangling_stream lib then begin
    Tape.write_filemark d;
    t.streams.(drive) <- t.streams.(drive) + 1
  end

(* Build the checkpoint describing a fresh job, creating its snapshot; a
   stale checkpoint for the same (strategy, label) is an abandoned job —
   discard it along with its snapshot. *)
let fresh_checkpoint t ~strategy ~level ~subtree ~drives ~label ~parts =
  (match Catalog.find_checkpoint t.cat ~strategy ~label with
  | Some stale ->
    if stale.Catalog.ck_snapshot <> "" && snapshot_exists t stale.Catalog.ck_snapshot
    then Fs.snapshot_delete t.e_fs stale.Catalog.ck_snapshot;
    Catalog.clear_checkpoint t.cat ~strategy ~label
  | None -> ());
  let date = Fs.now t.e_fs in
  t.snap_seq <- t.snap_seq + 1;
  let snapshot_create name =
    Obs.with_span "creating snapshot"
      ~attrs:[ ("snapshot", Obs.Str name) ]
      (fun () -> Fs.snapshot_create t.e_fs name)
  in
  let snap, base =
    match strategy with
    | Strategy.Logical ->
      let snap = Printf.sprintf "dump.%d" t.snap_seq in
      snapshot_create snap;
      (snap, "")
    | Strategy.Physical ->
      let snap = Printf.sprintf "image.%d" t.snap_seq in
      snapshot_create snap;
      if level = 0 then (snap, "")
      else (
        match last_physical_snapshot t ~label with
        | Some b -> (snap, b)
        | None ->
          Fs.snapshot_delete t.e_fs snap;
          raise (Fs.Error "physical incremental requires a prior physical backup"))
  in
  {
    Catalog.ck_strategy = strategy;
    ck_label = label;
    ck_level = level;
    ck_date = date;
    ck_subtree = subtree;
    ck_drive = List.hd drives;
    ck_drives = drives;
    ck_parts = parts;
    ck_snapshot = snap;
    ck_base_snapshot = base;
    ck_media = [];
    ck_done = [];
  }

let do_backup t ~strategy ~level ~subtree ?exclude ~drives:requested ~label
    ~parts ~resume () =
  let ck =
    if resume then (
      match Catalog.find_checkpoint t.cat ~strategy ~label with
      | Some ck -> ck
      | None ->
        raise (Fs.Error (Printf.sprintf "no interrupted backup of %S to resume" label)))
    else
      fresh_checkpoint t ~strategy ~level ~subtree
        ~drives:(match requested with Some l -> l | None -> [ 0 ])
        ~label ~parts
  in
  Catalog.set_checkpoint t.cat ck;
  let level = ck.Catalog.ck_level in
  let subtree = ck.Catalog.ck_subtree in
  let parts = ck.Catalog.ck_parts in
  let date = ck.Catalog.ck_date in
  (* The drive pool: an explicit request wins; a resume otherwise reuses
     the pool the job was launched with. *)
  let drives =
    match requested with
    | Some l -> l
    | None -> (
      match ck.Catalog.ck_drives with [] -> [ ck.Catalog.ck_drive ] | l -> l)
  in
  List.iter
    (fun d ->
      if d < 0 || d >= drive_count t then
        invalid_arg (Printf.sprintf "Engine.backup_job: no drive %d" d))
    drives;
  Obs.annotate
    [
      ("level", Obs.Int level);
      ("parts", Obs.Int parts);
      ("drives", Obs.Int (List.length drives));
      ("snapshot", Obs.Str ck.Catalog.ck_snapshot);
    ];
  (* Seal whatever streams an interrupting fault cut off, on every drive
     in the pool. *)
  List.iter (fun d -> seal_dangling t ~drive:d) drives;
  let media_before =
    List.map
      (fun d -> (d, List.map Tape.media_label (Library.used_media (lib_of t d))))
      drives
  in
  let done_parts = ref ck.Catalog.ck_done in
  let media_acc = ref ck.Catalog.ck_media in
  let merge_media () =
    List.iter
      (fun (d, before) ->
        List.iter
          (fun m -> if not (List.mem m !media_acc) then media_acc := !media_acc @ [ m ])
          (media_of (lib_of t d) before))
      media_before
  in
  let save_checkpoint () =
    Catalog.set_checkpoint t.cat
      { ck with Catalog.ck_done = !done_parts; ck_media = !media_acc }
  in
  let is_done p =
    List.exists (fun (d : Catalog.part_done) -> d.Catalog.part = p) !done_parts
  in
  let disk = Volume.resource (Fs.volume t.e_fs) in
  let part_job p =
    {
      Scheduler.label = Printf.sprintf "part %d/%d" (p + 1) parts;
      pin = None;
      execute =
        (fun ~drive ->
          let host = drive_host t drive in
          Obs.with_span "part"
            ~attrs:
              [
                ("part", Obs.Int (p + 1));
                ("parts", Obs.Int parts);
                ("drive", Obs.Int drive);
                ("host", Obs.Str host);
              ]
          @@ fun () ->
          let lib = lib_of t drive in
          let ((bytes, degraded), shipment), measured =
            with_measured (part_resources t ~drive) (fun () ->
                Retry.run ~policy:t.retry
                  ~charge:(charge_backoff t)
                  ~cleanup:(fun _ -> seal_dangling t ~drive)
                  ~label:(Printf.sprintf "%s part %d/%d" label (p + 1) parts)
                  (fun () ->
                    let shipment, sink =
                      if host = "" then (None, Tapeio.sink lib)
                      else
                        let sh, sink =
                          Mover.remote_sink ~session:(session_for t host) lib
                        in
                        (Some sh, sink)
                    in
                    let counts =
                      match strategy with
                      | Strategy.Logical ->
                        let view =
                          Fs.snapshot_view t.e_fs ck.Catalog.ck_snapshot
                        in
                        let r =
                          Dump.run ~level ~dumpdates:t.dd ~record:false ?exclude
                            ?cpu:t.cpu ~costs:t.costs ~part:(p, parts) ~view
                            ~subtree ~label ~date ~sink ()
                        in
                        (r.Dump.bytes_written, r.Dump.files_skipped)
                      | Strategy.Physical ->
                        let r =
                          if ck.Catalog.ck_base_snapshot = "" then
                            Image_dump.full ?cpu:t.cpu ~costs:t.costs
                              ~part:(p, parts) ~fs:t.e_fs
                              ~snapshot:ck.Catalog.ck_snapshot ~sink ()
                          else
                            Image_dump.incremental ?cpu:t.cpu ~costs:t.costs
                              ~part:(p, parts) ~fs:t.e_fs
                              ~base:ck.Catalog.ck_base_snapshot
                              ~snapshot:ck.Catalog.ck_snapshot ~sink ()
                        in
                        (r.Image_dump.bytes_written, 0)
                    in
                    (counts, shipment)))
          in
          let stream = t.streams.(drive) in
          t.streams.(drive) <- stream + 1;
          (* The read path is mostly absorbed by the buffer cache, so the
             contention the paper measures — inode-order logical reads
             saturating the array, sequential image reads not — enters as
             a modeled demand on the shared source disks. *)
          let rate =
            match strategy with
            | Strategy.Logical -> t.model.logical_read_bytes_s
            | Strategy.Physical -> t.model.image_read_bytes_s
          in
          let modeled =
            Scheduler.demand_of_resource disk (Float.of_int bytes /. rate)
          in
          let demands = net_demand ~host ~part:p shipment @ (modeled :: measured) in
          (* Close the part's span with its demand vector: the critical-path
             analysis charges each step's gating intervals from these. *)
          if Obs.enabled () then
            Obs.annotate
              (List.map
                 (fun (d : Scheduler.demand) ->
                   ("demand:" ^ d.Scheduler.key, Obs.Float d.Scheduler.work))
                 demands);
          ({ Catalog.part = p; stream; drive; bytes; degraded }, demands));
    }
  in
  let pending = List.filter (fun p -> not (is_done p)) (List.init parts Fun.id) in
  let on_complete _ (c : Catalog.part_done Scheduler.completion) =
    done_parts :=
      List.sort
        (fun (a : Catalog.part_done) b -> compare a.Catalog.part b.Catalog.part)
        (c.Scheduler.value :: !done_parts);
    merge_media ();
    save_checkpoint ();
    Obs.instant "scheduler.part_done"
      ~attrs:
        [
          ("part", Obs.Int (c.Scheduler.value.Catalog.part + 1));
          ("drive", Obs.Int c.Scheduler.drive);
          ("sim_start_s", Obs.Float c.Scheduler.started);
          ("sim_finish_s", Obs.Float c.Scheduler.finished);
        ]
  in
  let sampler =
    if Obs.enabled () then Some (Analysis.sampler ~prefix:"backup" ()) else None
  in
  let outcomes, stats =
    Scheduler.run
      ~fatal:(function
        | Repro_fault.Fault.Drive_dead _ | Repro_fault.Fault.Partitioned _ ->
          true
        | _ -> false)
      ~on_complete
      ?on_interval:(Option.map (fun s -> Analysis.sampler_segment s) sampler)
      ~drives
      (List.map part_job pending)
  in
  Option.iter Analysis.sampler_flush sampler;
  note_stats t stats;
  List.iter
    (fun (d, busy, _) ->
      Obs.set_gauge (Printf.sprintf "scheduler.drive%d.busy_s" d) busy;
      Obs.set_gauge
        (Printf.sprintf "scheduler.drive%d.utilization" d)
        (if stats.Scheduler.elapsed > 0.0 then busy /. stats.Scheduler.elapsed
         else 0.0))
    stats.Scheduler.per_drive;
  Obs.annotate [ ("sim_elapsed_s", Obs.Float stats.Scheduler.elapsed) ];
  (match
     Array.to_list outcomes
     |> List.filter_map (function
          | Scheduler.Failed { error; _ } -> Some error
          | _ -> None)
   with
  | [] -> ()
  | error :: _ ->
    (* A hard fault: persist what completed (and the cartridges touched)
       so [backup ~resume:true] re-dumps only the unfinished parts. *)
    merge_media ();
    save_checkpoint ();
    raise error);
  let done_list = !done_parts in
  let streams = List.map (fun (d : Catalog.part_done) -> d.Catalog.stream) done_list in
  let part_drives =
    List.map (fun (d : Catalog.part_done) -> d.Catalog.drive) done_list
  in
  let part_hosts =
    List.map (fun (d : Catalog.part_done) -> drive_host t d.Catalog.drive) done_list
  in
  let bytes = List.fold_left (fun a (d : Catalog.part_done) -> a + d.Catalog.bytes) 0 done_list in
  let degraded =
    List.fold_left (fun a (d : Catalog.part_done) -> a + d.Catalog.degraded) 0 done_list
  in
  Catalog.clear_checkpoint t.cat ~strategy ~label;
  let snapshot_delete name =
    Obs.with_span "deleting snapshot"
      ~attrs:[ ("snapshot", Obs.Str name) ]
      (fun () -> Fs.snapshot_delete t.e_fs name)
  in
  (match strategy with
  | Strategy.Logical ->
    snapshot_delete ck.Catalog.ck_snapshot;
    (* Recorded only now, with every part sealed: a job that failed midway
       must not make the next incremental's base date lie. *)
    Dumpdates.record t.dd ~label ~level ~date
  | Strategy.Physical ->
    (* The old base has served its purpose; the new snapshot anchors the
       next incremental. *)
    if ck.Catalog.ck_base_snapshot <> "" then
      snapshot_delete ck.Catalog.ck_base_snapshot);
  Catalog.add t.cat
    {
      Catalog.id = 0;
      strategy;
      label;
      level;
      date;
      bytes;
      drive = ck.Catalog.ck_drive;
      stream = (match streams with s :: _ -> s | [] -> 0);
      streams;
      part_drives;
      part_hosts;
      media = !media_acc;
      snapshot =
        (match strategy with
        | Strategy.Logical -> ""
        | Strategy.Physical -> ck.Catalog.ck_snapshot);
      base_snapshot = ck.Catalog.ck_base_snapshot;
      degraded;
    }

module Job = struct
  type error =
    | Empty_subtree
    | Relative_subtree of string
    | Bad_level of int
    | Bad_parts of int
    | Empty_pool
    | Duplicate_drive of int

  exception Invalid of error

  let error_message = function
    | Empty_subtree -> "job subtree must not be empty"
    | Relative_subtree s -> Printf.sprintf "job subtree %S is not absolute" s
    | Bad_level l -> Printf.sprintf "dump level %d out of range (0-9)" l
    | Bad_parts p -> Printf.sprintf "parts must be >= 1 (got %d)" p
    | Empty_pool -> "empty drive pool"
    | Duplicate_drive d -> Printf.sprintf "drive %d appears twice in the pool" d

  type t = {
    strategy : Strategy.t;
    level : int;
    subtree : string;
    exclude : Filter.t option;
    label : string option;
    parts : int;
    drives : int list option;
    resume : bool;
  }

  let make ~strategy ?(level = 0) ?(subtree = "/") ?exclude ?label ?(parts = 1)
      ?drives ?(resume = false) () =
    if subtree = "" then raise (Invalid Empty_subtree);
    if subtree.[0] <> '/' then raise (Invalid (Relative_subtree subtree));
    if level < 0 || level > 9 then raise (Invalid (Bad_level level));
    if parts < 1 then raise (Invalid (Bad_parts parts));
    (match drives with
    | Some [] -> raise (Invalid Empty_pool)
    | Some pool ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun d ->
          if Hashtbl.mem seen d then raise (Invalid (Duplicate_drive d));
          Hashtbl.add seen d ())
        pool
    | None -> ());
    { strategy; level; subtree; exclude; label; parts; drives; resume }

  let label job = match job.label with Some l -> l | None -> job.subtree
end

let with_backup_span t ~strategy ~label ~resume k =
  t.stats <- None;
  Obs.with_span "engine.backup"
    ~attrs:
      [
        ("strategy", Obs.Str (Strategy.to_string strategy));
        ("label", Obs.Str label);
        ("resume", Obs.Bool resume);
      ]
    (fun () ->
      let entry = k () in
      Obs.set_gauge "fs.used_blocks" (Float.of_int (Fs.used_blocks t.e_fs));
      Obs.set_gauge "fs.free_blocks" (Float.of_int (Fs.free_blocks t.e_fs));
      entry)

let backup_job t (job : Job.t) =
  let label = Job.label job in
  with_backup_span t ~strategy:job.Job.strategy ~label ~resume:job.Job.resume
    (fun () ->
      do_backup t ~strategy:job.Job.strategy ~level:job.Job.level
        ~subtree:job.Job.subtree ?exclude:job.Job.exclude
        ~drives:job.Job.drives ~label ~parts:job.Job.parts
        ~resume:job.Job.resume ())

(* Each part's (stream, drive) address. Entries predating multi-drive
   pools (or hand-built in tests) may carry no per-part drives; they fall
   back to the entry's single drive. *)
let part_locations (e : Catalog.entry) =
  let drives =
    if List.length e.Catalog.part_drives = List.length e.Catalog.streams then
      e.Catalog.part_drives
    else List.map (fun _ -> e.Catalog.drive) e.Catalog.streams
  in
  List.combine e.Catalog.streams drives

(* A part stream for reading. Local drives read in place; a remote
   drive's stream is shipped back whole over the session first (the
   three-way restore path), so the returned shipment already carries its
   transfer report. *)
let source_on t ~drive stream =
  let lib = lib_of t drive in
  match drive_host t drive with
  | "" -> (None, Tapeio.source ~skip_streams:stream lib)
  | host ->
    let sh, src =
      Mover.remote_source ~skip_streams:stream ~session:(session_for t host) lib
    in
    (Some sh, src)

(* Run [f] over each of the entry's part streams in part order, merging
   with [merge]. Sources are created one at a time: each creation rewinds
   its stacker. *)
let over_streams t (e : Catalog.entry) ~f ~merge ~zero =
  List.fold_left
    (fun acc (stream, drive) ->
      let _, src = source_on t ~drive stream in
      merge acc (f src))
    zero (part_locations e)

(* Replay one entry's part streams through the drive scheduler: each part
   pinned to the drive that wrote it, [concurrency] capping in-flight
   parts (1 = the classic serial restore, in part order — parts are
   independent, so any completion order yields the same tree). Entries of
   a chain are applied one after another: an incremental must not overtake
   its base. *)
let scheduled_parts t ~concurrency (e : Catalog.entry) ~execute =
  let locs = part_locations e in
  let drives = List.sort_uniq compare (List.map snd locs) in
  let jobs =
    List.mapi
      (fun i (stream, drive) ->
        {
          Scheduler.label =
            Printf.sprintf "restore part %d/%d" (i + 1) (List.length locs);
          pin = Some drive;
          execute = (fun ~drive -> execute ~stream ~drive);
        })
      locs
  in
  (* Later chain entries continue the restore timeline where the previous
     schedule left off, so the recorded series and instants don't overlap. *)
  let offset = match t.stats with Some s -> s.Scheduler.elapsed | None -> 0.0 in
  let sampler =
    if Obs.enabled () then
      Some (Analysis.sampler ~prefix:"restore" ~t0:offset ())
    else None
  in
  let on_complete i (c : _ Scheduler.completion) =
    Obs.instant "scheduler.restore_part_done"
      ~attrs:
        [
          ("part", Obs.Int (i + 1));
          ("drive", Obs.Int c.Scheduler.drive);
          ("sim_start_s", Obs.Float (offset +. c.Scheduler.started));
          ("sim_finish_s", Obs.Float (offset +. c.Scheduler.finished));
        ]
  in
  let outcomes, stats =
    Scheduler.run ~max_active:concurrency ~on_complete
      ?on_interval:(Option.map (fun s -> Analysis.sampler_segment s) sampler)
      ~drives jobs
  in
  Option.iter Analysis.sampler_flush sampler;
  note_stats t stats;
  Array.iter
    (function Scheduler.Failed { error; _ } -> raise error | _ -> ())
    outcomes;
  Array.to_list outcomes
  |> List.map (function
       | Scheduler.Done c -> c.Scheduler.value
       | Scheduler.Failed _ | Scheduler.Skipped ->
         raise (Fs.Error "restore part did not run"))

let sum_apply =
  List.fold_left
    (fun (acc : Restore.apply_result) (r : Restore.apply_result) ->
      {
        Restore.files_restored = acc.files_restored + r.files_restored;
        dirs_created = acc.dirs_created + r.dirs_created;
        files_deleted = acc.files_deleted + r.files_deleted;
        renames = acc.renames + r.renames;
        bytes_restored = acc.bytes_restored + r.bytes_restored;
        corrupt_headers_skipped = acc.corrupt_headers_skipped + r.corrupt_headers_skipped;
      })
    {
      Restore.files_restored = 0;
      dirs_created = 0;
      files_deleted = 0;
      renames = 0;
      bytes_restored = 0;
      corrupt_headers_skipped = 0;
    }

let apply_entry t session ?select ~disk ~concurrency (e : Catalog.entry) =
  let execute ~stream ~drive =
    Obs.with_span "restore part"
      ~attrs:[ ("stream", Obs.Int stream); ("drive", Obs.Int drive) ]
    @@ fun () ->
    let (r, shipment), measured =
      with_measured (part_resources t ~drive) (fun () ->
          let sh, src = source_on t ~drive stream in
          (Restore.apply ?select session src, sh))
    in
    let modeled =
      Scheduler.demand_of_resource disk
        ((Float.of_int r.Restore.bytes_restored /. t.model.logical_write_bytes_s)
        +. Float.of_int r.Restore.files_restored
           *. t.model.restore_create_latency_s)
    in
    let demands =
      net_demand ~host:(drive_host t drive) ~part:stream shipment
      @ (modeled :: measured)
    in
    if Obs.enabled () then
      Obs.annotate
        (List.map
           (fun (d : Scheduler.demand) ->
             ("demand:" ^ d.Scheduler.key, Obs.Float d.Scheduler.work))
           demands);
    (r, demands)
  in
  sum_apply (scheduled_parts t ~concurrency e ~execute)

let restore_logical t ~label ~fs ~target ?select ?(concurrency = 1) () =
  Obs.with_span "engine.restore"
    ~attrs:[ ("strategy", Obs.Str "logical"); ("label", Obs.Str label) ]
  @@ fun () ->
  t.stats <- None;
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Logical with
  | [] -> raise (Fs.Error (Printf.sprintf "no logical backups of %S" label))
  | chain -> (
    let session = Restore.session ?cpu:t.cpu ~costs:t.costs ~fs ~target () in
    let disk = Volume.resource (Fs.volume fs) in
    let out =
      match select with
      | Some _ ->
        (* Selective extraction reads only the newest full dump. *)
        let full = List.hd chain in
        [ apply_entry t session ?select ~disk ~concurrency full ]
      | None -> List.map (fun e -> apply_entry t session ~disk ~concurrency e) chain
    in
    (match t.stats with
    | Some s -> Obs.annotate [ ("sim_elapsed_s", Obs.Float s.Scheduler.elapsed) ]
    | None -> ());
    out)

let restore_physical t ~label ~volume ?(concurrency = 1) () =
  Obs.with_span "engine.restore"
    ~attrs:[ ("strategy", Obs.Str "physical"); ("label", Obs.Str label) ]
  @@ fun () ->
  t.stats <- None;
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Physical with
  | [] -> raise (Fs.Error (Printf.sprintf "no physical backups of %S" label))
  | chain ->
    let disk = Volume.resource volume in
    List.map
      (fun e ->
        let execute ~stream ~drive =
          Obs.with_span "restore part"
            ~attrs:[ ("stream", Obs.Int stream); ("drive", Obs.Int drive) ]
          @@ fun () ->
          let (r, shipment), measured =
            with_measured (part_resources t ~drive) (fun () ->
                let sh, src = source_on t ~drive stream in
                (Image_restore.apply ?cpu:t.cpu ~costs:t.costs ~volume src, sh))
          in
          let modeled =
            Scheduler.demand_of_resource disk
              (Float.of_int r.Image_restore.bytes_read /. t.model.image_write_bytes_s)
          in
          let demands =
            net_demand ~host:(drive_host t drive) ~part:stream shipment
            @ (modeled :: measured)
          in
          if Obs.enabled () then
            Obs.annotate
              (List.map
                 (fun (d : Scheduler.demand) ->
                   ("demand:" ^ d.Scheduler.key, Obs.Float d.Scheduler.work))
                 demands);
          (r, demands)
        in
        match scheduled_parts t ~concurrency e ~execute with
        | [] -> assert false
        | first :: _ as rs ->
          {
            first with
            Image_restore.blocks_restored =
              List.fold_left (fun a r -> a + r.Image_restore.blocks_restored) 0 rs;
            bytes_read =
              List.fold_left (fun a r -> a + r.Image_restore.bytes_read) 0 rs;
          })
      chain
    |> fun out ->
    (match t.stats with
    | Some s -> Obs.annotate [ ("sim_elapsed_s", Obs.Float s.Scheduler.elapsed) ]
    | None -> ());
    out

let restore t ~strategy ~label ?fs ?target ?select ?volume ?(concurrency = 1) ()
    =
  match strategy with
  | Strategy.Logical ->
    let fs = match fs with Some f -> f | None -> t.e_fs in
    let target =
      match target with
      | Some x -> x
      | None -> invalid_arg "Engine.restore: a logical restore needs ~target"
    in
    `Logical (restore_logical t ~label ~fs ~target ?select ~concurrency ())
  | Strategy.Physical ->
    (match select with
    | Some _ -> invalid_arg "Engine.restore: ~select applies to logical only"
    | None -> ());
    let volume =
      match volume with
      | Some v -> v
      | None -> invalid_arg "Engine.restore: a physical restore needs ~volume"
    in
    `Physical (restore_physical t ~label ~volume ~concurrency ())

let table_of_contents t (e : Catalog.entry) =
  (* Every part carries all directories; dedupe by inode across parts. *)
  let seen = Hashtbl.create 256 in
  over_streams t e
    ~f:(fun src ->
      List.filter
        (fun (te : Restore.toc_entry) ->
          if Hashtbl.mem seen te.Restore.ino then false
          else begin
            Hashtbl.add seen te.Restore.ino ();
            true
          end)
        (Restore.table_of_contents src))
    ~merge:(fun a b -> a @ b)
    ~zero:[]

let merge_verdicts a b =
  match (a, b) with
  | Ok (), Ok () -> Ok ()
  | (Error _ as e), Ok () | Ok (), (Error _ as e) -> e
  | Error p, Error q -> Error (p @ q)

let verify_logical t ~label ~fs ~target =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Logical with
  | [] -> Error [ Printf.sprintf "no logical backups of %S" label ]
  | full :: _ ->
    over_streams t full
      ~f:(fun src -> Restore.compare ~fs ~target src)
      ~merge:merge_verdicts ~zero:(Ok ())

let save w t =
  let open Repro_util.Serde in
  write_fixed w "RENG4";
  write_u16 w (List.length t.links);
  List.iter (fun (_, l) -> Link.save w l) t.links;
  write_u16 w (Array.length t.atts);
  Array.iter
    (fun a ->
      write_string w a.att_host;
      Library.save w a.att_lib)
    t.atts;
  Array.iter (fun s -> write_u32 w s) t.streams;
  write_string w (Dumpdates.encode t.dd);
  write_string w (Catalog.encode t.cat);
  write_u32 w t.snap_seq

let load ?cpu ?(costs = Cost.f630) ?clock ?(retry = Retry.default)
    ?(model = default_io_model) r ~fs =
  let open Repro_util.Serde in
  let mk ~atts ~links ~streams ~dd ~cat ~snap_seq =
    {
      e_fs = fs;
      atts;
      links;
      sessions = [];
      dd;
      cat;
      cpu;
      costs;
      clock;
      retry;
      model;
      streams;
      snap_seq;
      stats = None;
    }
  in
  match read_fixed r 5 with
  | ("RENG2" | "RENG3") as generation ->
    (* Pre-network stores: every stacker was cabled to the backup host,
       and RENG2 additionally predates per-part drive placement. *)
    let nlibs = read_u16 r in
    let libs = Array.init nlibs (fun _ -> Library.load r) in
    let streams = Array.init nlibs (fun _ -> read_u32 r) in
    let dd = Dumpdates.decode (read_string r) in
    let version = if String.equal generation "RENG2" then 2 else 3 in
    let cat = Catalog.decode ~version (read_string r) in
    let snap_seq = read_u32 r in
    mk
      ~atts:(Array.map (fun l -> { att_lib = l; att_host = "" }) libs)
      ~links:[] ~streams ~dd ~cat ~snap_seq
  | "RENG4" ->
    let nlinks = read_u16 r in
    let links =
      List.init nlinks (fun _ ->
          let l = Link.load r in
          (Link.label l, l))
    in
    let natts = read_u16 r in
    let atts =
      Array.init natts (fun _ ->
          let att_host = read_string r in
          let att_lib = Library.load r in
          { att_lib; att_host })
    in
    let streams = Array.init natts (fun _ -> read_u32 r) in
    let dd = Dumpdates.decode (read_string r) in
    let cat = Catalog.decode (read_string r) in
    let snap_seq = read_u32 r in
    mk ~atts ~links ~streams ~dd ~cat ~snap_seq
  | m ->
    raise (Corrupt (Printf.sprintf "unknown engine store generation %S" m))

let verify_physical t ~label =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Physical with
  | [] -> Error [ Printf.sprintf "no physical backups of %S" label ]
  | chain ->
    List.fold_left
      (fun acc e ->
        over_streams t e
          ~f:(fun src -> Image_restore.verify src)
          ~merge:(fun a b ->
            match (a, b) with
            | Ok n, Ok m -> Ok (n + m)
            | Ok _, Error p | Error p, Ok _ -> Error p
            | Error p, Error q -> Error (p @ q))
          ~zero:acc)
      (Ok 0) chain
