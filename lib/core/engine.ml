module Resource = Repro_sim.Resource
module Cost = Repro_sim.Cost
module Fs = Repro_wafl.Fs
module Library = Repro_tape.Library
module Tape = Repro_tape.Tape
module Tapeio = Repro_tape.Tapeio
module Dump = Repro_dump.Dump
module Restore = Repro_dump.Restore
module Dumpdates = Repro_dump.Dumpdates
module Filter = Repro_dump.Filter
module Image_dump = Repro_image.Image_dump
module Image_restore = Repro_image.Image_restore

type t = {
  e_fs : Fs.t;
  libs : Library.t array;
  dd : Dumpdates.t;
  cat : Catalog.t;
  cpu : Resource.t option;
  costs : Cost.t;
  streams : int array; (* streams written per drive *)
  mutable snap_seq : int;
}

let create ?cpu ?(costs = Cost.f630) ~fs ~libraries () =
  if libraries = [] then invalid_arg "Engine.create: no tape libraries";
  {
    e_fs = fs;
    libs = Array.of_list libraries;
    dd = Dumpdates.create ();
    cat = Catalog.create ();
    cpu;
    costs;
    streams = Array.make (List.length libraries) 0;
    snap_seq = 0;
  }

let fs t = t.e_fs
let catalog t = t.cat
let dumpdates t = t.dd

let media_of lib before =
  let all = List.map Tape.media_label (Library.used_media lib) in
  List.filter (fun m -> not (List.mem m before)) all

let last_physical_snapshot t ~label =
  match
    List.rev
      (List.filter
         (fun (e : Catalog.entry) ->
           e.Catalog.strategy = Strategy.Physical && String.equal e.Catalog.label label)
         (Catalog.entries t.cat))
  with
  | e :: _ -> Some e.Catalog.snapshot
  | [] -> None

let backup t ~strategy ?(level = 0) ?(subtree = "/") ?exclude ?(drive = 0) ?label () =
  let label = match label with Some l -> l | None -> subtree in
  let lib = t.libs.(drive) in
  let media_before = List.map Tape.media_label (Library.used_media lib) in
  let stream = t.streams.(drive) in
  let date = Fs.now t.e_fs in
  let entry =
    match strategy with
    | Strategy.Logical ->
      t.snap_seq <- t.snap_seq + 1;
      let snap = Printf.sprintf "dump.%d" t.snap_seq in
      Fs.snapshot_create t.e_fs snap;
      let view = Fs.snapshot_view t.e_fs snap in
      let result =
        Dump.run ~level ~dumpdates:t.dd ?exclude ?cpu:t.cpu ~costs:t.costs ~view
          ~subtree ~label ~date ~sink:(Tapeio.sink lib) ()
      in
      Fs.snapshot_delete t.e_fs snap;
      {
        Catalog.id = 0;
        strategy;
        label;
        level;
        date;
        bytes = result.Dump.bytes_written;
        drive;
        stream;
        media = media_of lib media_before;
        snapshot = "";
        base_snapshot = "";
      }
    | Strategy.Physical ->
      t.snap_seq <- t.snap_seq + 1;
      let snap = Printf.sprintf "image.%d" t.snap_seq in
      Fs.snapshot_create t.e_fs snap;
      let base =
        if level = 0 then None
        else
          match last_physical_snapshot t ~label with
          | Some b -> Some b
          | None ->
            Fs.snapshot_delete t.e_fs snap;
            raise (Fs.Error "physical incremental requires a prior physical backup")
      in
      let result =
        match base with
        | None ->
          Image_dump.full ?cpu:t.cpu ~costs:t.costs ~fs:t.e_fs ~snapshot:snap
            ~sink:(Tapeio.sink lib) ()
        | Some b ->
          let r =
            Image_dump.incremental ?cpu:t.cpu ~costs:t.costs ~fs:t.e_fs ~base:b
              ~snapshot:snap ~sink:(Tapeio.sink lib) ()
          in
          (* The old base has served its purpose; the new snapshot anchors
             the next incremental. *)
          Fs.snapshot_delete t.e_fs b;
          r
      in
      {
        Catalog.id = 0;
        strategy;
        label;
        level;
        date;
        bytes = result.Image_dump.bytes_written;
        drive;
        stream;
        media = media_of lib media_before;
        snapshot = snap;
        base_snapshot = (match base with Some b -> b | None -> "");
      }
  in
  t.streams.(drive) <- stream + 1;
  Catalog.add t.cat entry

let source_of t (e : Catalog.entry) =
  Tapeio.source ~skip_streams:e.Catalog.stream t.libs.(e.Catalog.drive)

let restore_logical t ~label ~fs ~target ?select () =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Logical with
  | [] -> raise (Fs.Error (Printf.sprintf "no logical backups of %S" label))
  | chain ->
    let session = Restore.session ?cpu:t.cpu ~costs:t.costs ~fs ~target () in
    (match select with
    | Some _ ->
      (* Selective extraction reads only the newest full dump. *)
      let full = List.hd chain in
      [ Restore.apply ?select session (source_of t full) ]
    | None ->
      List.map (fun e -> Restore.apply session (source_of t e)) chain)

let restore_physical t ~label ~volume () =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Physical with
  | [] -> raise (Fs.Error (Printf.sprintf "no physical backups of %S" label))
  | chain ->
    List.map
      (fun e -> Image_restore.apply ?cpu:t.cpu ~costs:t.costs ~volume (source_of t e))
      chain

let table_of_contents t entry = Restore.table_of_contents (source_of t entry)

let verify_logical t ~label ~fs ~target =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Logical with
  | [] -> Error [ Printf.sprintf "no logical backups of %S" label ]
  | full :: _ -> Restore.compare ~fs ~target (source_of t full)

let save w t =
  let open Repro_util.Serde in
  write_fixed w "RENG1";
  write_u16 w (Array.length t.libs);
  Array.iter (fun lib -> Library.save w lib) t.libs;
  Array.iter (fun s -> write_u32 w s) t.streams;
  write_string w (Dumpdates.encode t.dd);
  write_string w (Catalog.encode t.cat);
  write_u32 w t.snap_seq

let load ?cpu ?(costs = Cost.f630) r ~fs =
  let open Repro_util.Serde in
  expect_magic r "RENG1";
  let nlibs = read_u16 r in
  let libs = Array.init nlibs (fun _ -> Library.load r) in
  let streams = Array.init nlibs (fun _ -> read_u32 r) in
  let dd = Dumpdates.decode (read_string r) in
  let cat = Catalog.decode (read_string r) in
  let snap_seq = read_u32 r in
  { e_fs = fs; libs; dd; cat; cpu; costs; streams; snap_seq }

let verify_physical t ~label =
  match Catalog.restore_chain t.cat ~label ~strategy:Strategy.Physical with
  | [] -> Error [ Printf.sprintf "no physical backups of %S" label ]
  | chain ->
    List.fold_left
      (fun acc e ->
        match (acc, Image_restore.verify (source_of t e)) with
        | Ok n, Ok m -> Ok (n + m)
        | Ok _, Error p | Error p, Ok _ -> Error p
        | Error p, Error q -> Error (p @ q))
      (Ok 0) chain
