(** The paper's evaluation (§5), re-run.

    Each experiment builds a mature synthetic volume, runs the {e real}
    dump/restore implementations while measuring per-stage resource
    demands ({!Instrument}), and overlaps the streams with the fluid
    {!Repro_sim.Pipeline} solver to obtain elapsed times, throughputs and
    utilizations. Volumes are scaled down from the paper's 188 GB (rates
    and ratios, not absolute sizes, are the reproduction target); device
    and CPU parameters are period-calibrated (DLT-7000 tape, ~10 MB/s
    disks, 500 MHz CPU).

    - {!run_basic} with [~tapes:1] produces Tables 2 and 3;
    - [~tapes:2] and [~tapes:4] produce Tables 4 and 5;
    - {!run_concurrent} reproduces the §5.1 claim that concurrent dumps of
      two volumes do not interfere. *)

type config = {
  data_bytes : int;  (** user data per volume *)
  seed : int;
  groups : int;  (** RAID groups ("home" has 3) *)
  disks_per_group : int;  (** incl. parity (31 disks / 3 groups ≈ 11) *)
  aged : bool;  (** churn the volume into a mature, fragmented state *)
  churn_rounds : int;
  tape : Repro_tape.Tape.params;
  costs : Repro_sim.Cost.t;
  profile : Repro_workload.Generator.profile;
      (** file-size/fan-out profile; the default median is chosen so
          files-per-megabyte lands near the paper's volume, keeping
          per-file costs comparable at small scale *)
  create_latency_s : float;
      (** serialization latency per file creation on the restore path
          (models the synchronous request/response cost that keeps the
          paper's "creating files" stage from being CPU-saturated) *)
  dump_file_latency_s : float;
      (** unhidden per-file positioning latency on the dump's files phase *)
  dump_stream_bytes_s : float;
      (** effective single-stream streaming rate of the dump read pipeline
          (one file at a time ≈ one spindle plus read-ahead, not the whole
          array) *)
  auto_cp_ops : int;
}

val default_config : unit -> config
(** 64 MiB of data, aged, home-like geometry. *)

val quick_config : unit -> config
(** 8 MiB and light churn — for tests and smoke runs. *)

type operation = {
  op_name : string;
  report : Repro_sim.Pipeline.report;
  payload_bytes : int;  (** user data moved *)
  stream_count : int;
}

val elapsed : operation -> float
val mb_s : operation -> float
val gb_h : operation -> float

type basic = {
  cfg : config;
  tapes : int;
  files : int;
  fragmentation : float;
  logical_backup : operation;
  logical_restore : operation;
  physical_backup : operation;
  physical_restore : operation;
}

val run_basic : ?tapes:int -> config -> basic
(** Runs all four operations end to end (the restores are verified against
    the source tree; a mismatch raises [Failure]). *)

type concurrent = {
  home_solo : operation;
  rlse_solo : operation;
  combined : Repro_sim.Pipeline.report;
  home_combined_elapsed : float;
  rlse_combined_elapsed : float;
}

val run_concurrent : config -> concurrent
(** Two volumes (the second ⅔ the size, like rlse vs home), dumped
    concurrently to separate drives; compares against solo runs. *)

(** {1 Stage helpers for reports} *)

val stage_cpu : Repro_sim.Pipeline.stage_summary -> float
val stage_rate_prefix : Repro_sim.Pipeline.stage_summary -> string -> float
(** MB/s through all resources whose name has the given prefix ("disk:" /
    "tape:"). *)
