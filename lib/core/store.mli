(** One-file persistence for a whole simulated filer.

    A store file holds the volume image (sparse), the tape stackers with
    their cartridges, the catalog and the dumpdates database, so the
    [backupctl] command-line tool can operate on a filer across process
    invocations like any other stateful system. *)

val save : path:string -> Engine.t -> unit
(** Takes a consistency point first, then writes everything. *)

val load :
  ?cpu:Repro_sim.Resource.t -> ?costs:Repro_sim.Cost.t -> path:string -> unit -> Engine.t
(** Raises [Sys_error] on I/O problems, [Serde.Corrupt] or
    [Repro_wafl.Fs.Error] on a damaged store. *)
