module Resource = Repro_sim.Resource
module Cost = Repro_sim.Cost
module Pipeline = Repro_sim.Pipeline
module Disk = Repro_block.Disk
module Volume = Repro_block.Volume
module Tape = Repro_tape.Tape
module Library = Repro_tape.Library
module Tapeio = Repro_tape.Tapeio
module Fs = Repro_wafl.Fs
module Dump = Repro_dump.Dump
module Restore = Repro_dump.Restore
module Image_dump = Repro_image.Image_dump
module Image_restore = Repro_image.Image_restore
module Generator = Repro_workload.Generator
module Ager = Repro_workload.Ager
module Compare = Repro_workload.Compare

type config = {
  data_bytes : int;
  seed : int;
  groups : int;
  disks_per_group : int;
  aged : bool;
  churn_rounds : int;
  tape : Tape.params;
  costs : Cost.t;
  profile : Generator.profile;
  create_latency_s : float;
  dump_file_latency_s : float;
  dump_stream_bytes_s : float;
  auto_cp_ops : int;
}

let default_config () =
  {
    data_bytes = 64 * 1024 * 1024;
    seed = 1999;
    groups = 3;
    disks_per_group = 11;
    aged = true;
    churn_rounds = 12;
    tape = Tape.dlt7000;
    costs = Cost.f630;
    (* Larger median than Generator.default so the file count per byte is
       closer to the paper's engineering volume; per-file costs then scale
       comparably despite the much smaller volume. *)
    profile = { Generator.default with Generator.median_file_bytes = 24_576.0; sigma = 1.3 };
    create_latency_s = 0.0025;
    (* The single-stream read pipeline of the files phase: dump reads one
       file at a time, so each file costs an unhidden positioning latency
       and its bytes stream at roughly one spindle's rate boosted by
       read-ahead — not the whole array's. This is what held the paper's
       one-tape logical dump to ~7 MB/s against an 8.4 MB/s drive. *)
    dump_file_latency_s = 0.004;
    dump_stream_bytes_s = 12.5e6;
    auto_cp_ops = 20_000;
  }

let quick_config () =
  {
    (default_config ()) with
    data_bytes = 8 * 1024 * 1024;
    churn_rounds = 4;
  }

type operation = {
  op_name : string;
  report : Pipeline.report;
  payload_bytes : int;
  stream_count : int;
}

let elapsed op = op.report.Pipeline.elapsed
let mb_s op = Repro_util.Units.mb_per_s ~bytes:op.payload_bytes ~seconds:(elapsed op)
let gb_h op = Repro_util.Units.gb_per_hour ~bytes:op.payload_bytes ~seconds:(elapsed op)

type basic = {
  cfg : config;
  tapes : int;
  files : int;
  fragmentation : float;
  logical_backup : operation;
  logical_restore : operation;
  physical_backup : operation;
  physical_restore : operation;
}

type concurrent = {
  home_solo : operation;
  rlse_solo : operation;
  combined : Pipeline.report;
  home_combined_elapsed : float;
  rlse_combined_elapsed : float;
}

(* ------------------------------------------------------------------ *)

let make_volume cfg ~label ~bytes =
  (* Enough room for data plus metadata, snapshots and COW churn. *)
  let data_disks = cfg.groups * (cfg.disks_per_group - 1) in
  let need_blocks = (bytes / 4096 * 2) + 4096 in
  let blocks_per_disk = (need_blocks + data_disks - 1) / data_disks in
  Volume.create ~label
    (Volume.geometry ~groups:cfg.groups ~disks_per_group:cfg.disks_per_group
       ~blocks_per_disk ())

let make_fs cfg ~cpu vol =
  let config = { (Fs.default_config ()) with Fs.cpu = Some cpu; costs = cfg.costs;
                 auto_cp_ops = cfg.auto_cp_ops } in
  (* The filer always runs with NVRAM: operations are logged (and charged)
     until a consistency point retires them; a full log forces a CP. *)
  Fs.mkfs ~config ~nvram:(Repro_wafl.Nvram.create ()) vol

let qtree_path i = Printf.sprintf "/home/q%d" i

let build_source cfg ~cpu ~qtrees ~bytes =
  let vol = make_volume cfg ~label:"home" ~bytes in
  let fs = make_fs cfg ~cpu vol in
  ignore (Fs.mkdir fs "/home" ~perms:0o755);
  for i = 0 to qtrees - 1 do
    ignore (Fs.qtree_create fs (qtree_path i) ~perms:0o755);
    let profile = { cfg.profile with Generator.seed = cfg.seed + (37 * i) } in
    ignore
      (Generator.populate ~profile ~fs ~root:(qtree_path i)
         ~total_bytes:(bytes / qtrees) ())
  done;
  if cfg.aged then
    for i = 0 to qtrees - 1 do
      let churn =
        { Ager.default_churn with Ager.seed = cfg.seed + (91 * i);
          rounds = cfg.churn_rounds }
      in
      ignore (Ager.age ~churn ~fs ~root:(qtree_path i) ())
    done;
  Fs.cp fs;
  (fs, vol)

let tape_libs cfg ~prefix n =
  Array.init n (fun i ->
      Library.create ~params:cfg.tape ~slots:64
        ~label:(Printf.sprintf "%s%d" prefix i)
        ())

let fresh_clock () = Repro_sim.Clock.create ()

(* ------------------------------------------------------------------ *)

let run_basic ?(tapes = 1) cfg =
  if tapes < 1 then invalid_arg "Experiment.run_basic";
  let n = tapes in
  let cpu = Resource.create "cpu" in
  let fs, vol = build_source cfg ~cpu ~qtrees:n ~bytes:cfg.data_bytes in
  let files = List.length (Generator.file_paths fs "/home") in
  let fragmentation = Ager.fragmentation fs "/home" in

  (* ---------------- logical backup ---------------- *)
  let dump_libs = tape_libs cfg ~prefix:"ld" n in
  let (), snap_create =
    Instrument.collect ~resources:[ cpu; Volume.resource vol ] (fun observe ->
        observe "creating snapshot" (fun () -> Fs.snapshot_create fs "dump"))
  in
  let view = Fs.snapshot_view fs "dump" in
  let dump_results =
    Array.init n (fun i ->
        let tape_res = Tape.resource (Library.drive dump_libs.(i)) in
        let result, stages =
          Instrument.collect ~resources:[ cpu; Volume.resource vol; tape_res ]
            (fun observe ->
              Dump.run ~observe ~cpu ~costs:cfg.costs ~view ~subtree:(qtree_path i)
                ~label:(qtree_path i) ~date:(Fs.now fs)
                ~sink:(Tapeio.sink dump_libs.(i))
                ())
        in
        (* The per-stream read pipeline: per-file positioning latency plus
           single-stream streaming rate (see default_config). *)
        let serial = Resource.create (Printf.sprintf "serial:d%d" i) in
        let pipeline_work =
          (Float.of_int result.Dump.files_dumped *. cfg.dump_file_latency_s)
          +. (Float.of_int result.Dump.bytes_written /. cfg.dump_stream_bytes_s)
        in
        let stages =
          Instrument.add_demand stages ~stage:"dumping files"
            (Pipeline.demand serial pipeline_work)
        in
        (result, stages))
  in
  let (), snap_delete =
    Instrument.collect ~resources:[ cpu; Volume.resource vol ] (fun observe ->
        observe "deleting snapshot" (fun () -> Fs.snapshot_delete fs "dump"))
  in
  let logical_streams =
    List.init n (fun i ->
        let _, stages = dump_results.(i) in
        let stages =
          if i = 0 then snap_create @ stages @ snap_delete else stages
        in
        { Pipeline.stream_label = Printf.sprintf "ldump%d" i; stages })
  in
  let logical_backup =
    {
      op_name = "Logical Backup";
      report = Pipeline.run ~clock:(fresh_clock ()) logical_streams;
      payload_bytes =
        Array.fold_left (fun acc (r, _) -> acc + r.Dump.bytes_written) 0 dump_results;
      stream_count = n;
    }
  in

  (* ---------------- logical restore ---------------- *)
  let ldst_vol = make_volume cfg ~label:"ldst" ~bytes:cfg.data_bytes in
  let ldst_fs = make_fs cfg ~cpu ldst_vol in
  ignore (Fs.mkdir ldst_fs "/home" ~perms:0o755);
  let restore_streams =
    List.init n (fun i ->
        let tape_res = Tape.resource (Library.drive dump_libs.(i)) in
        let serial = Resource.create (Printf.sprintf "serial:%d" i) in
        let session =
          Restore.session ~cpu ~costs:cfg.costs ~fs:ldst_fs ~target:(qtree_path i) ()
        in
        let result, stages =
          Instrument.collect
            ~resources:[ cpu; Volume.resource ldst_vol; tape_res ]
            (fun observe ->
              Restore.apply ~observe session (Tapeio.source dump_libs.(i)))
        in
        let creates =
          result.Restore.files_restored + result.Restore.dirs_created
        in
        let stages =
          Instrument.add_demand stages ~stage:"creating files"
            (Pipeline.demand serial (Float.of_int creates *. cfg.create_latency_s))
        in
        { Pipeline.stream_label = Printf.sprintf "lrest%d" i; stages })
  in
  let logical_restore =
    {
      op_name = "Logical Restore";
      report = Pipeline.run ~clock:(fresh_clock ()) restore_streams;
      payload_bytes = logical_backup.payload_bytes;
      stream_count = n;
    }
  in
  (match Compare.trees ~src:(fs, "/home") ~dst:(ldst_fs, "/home") () with
  | Ok () -> ()
  | Error d ->
    failwith ("logical restore verification failed: " ^ String.concat "; " d));

  (* ---------------- physical backup ---------------- *)
  let img_libs = tape_libs cfg ~prefix:"im" n in
  let (), isnap_create =
    Instrument.collect ~resources:[ cpu; Volume.resource vol ] (fun observe ->
        observe "creating snapshot" (fun () -> Fs.snapshot_create fs "img"))
  in
  let img_tape0 = Tape.resource (Library.drive img_libs.(0)) in
  let img_result, img_stages =
    Instrument.collect ~resources:[ cpu; Volume.resource vol; img_tape0 ]
      (fun observe ->
        Image_dump.full ~observe ~cpu ~costs:cfg.costs ~fs ~snapshot:"img"
          ~sink:(Tapeio.sink img_libs.(0))
          ())
  in
  let (), isnap_delete =
    Instrument.collect ~resources:[ cpu; Volume.resource vol ] (fun observe ->
        observe "deleting snapshot" (fun () -> Fs.snapshot_delete fs "img"))
  in
  let physical_streams =
    if n = 1 then
      [ { Pipeline.stream_label = "idump0";
          stages = isnap_create @ img_stages @ isnap_delete } ]
    else
      List.init n (fun i ->
          let split = Instrument.scale_stages img_stages (1.0 /. Float.of_int n) in
          let split =
            Instrument.retarget split ~from_prefix:"tape:"
              ~to_resource:(Tape.resource (Library.drive img_libs.(i)))
          in
          let split =
            if i = 0 then isnap_create @ split @ isnap_delete else split
          in
          { Pipeline.stream_label = Printf.sprintf "idump%d" i; stages = split })
  in
  let physical_backup =
    {
      op_name = "Physical Backup";
      report = Pipeline.run ~clock:(fresh_clock ()) physical_streams;
      payload_bytes = img_result.Image_dump.bytes_written;
      stream_count = n;
    }
  in

  (* ---------------- physical restore ---------------- *)
  let pdst_vol = make_volume cfg ~label:"pdst" ~bytes:cfg.data_bytes in
  let _rr, prest_stages =
    Instrument.collect ~resources:[ cpu; Volume.resource pdst_vol; img_tape0 ]
      (fun observe ->
        Image_restore.apply ~observe ~cpu ~costs:cfg.costs ~volume:pdst_vol
          (Tapeio.source img_libs.(0)))
  in
  let prest_streams =
    if n = 1 then [ { Pipeline.stream_label = "irest0"; stages = prest_stages } ]
    else
      List.init n (fun i ->
          let split = Instrument.scale_stages prest_stages (1.0 /. Float.of_int n) in
          let split =
            Instrument.retarget split ~from_prefix:"tape:"
              ~to_resource:(Tape.resource (Library.drive img_libs.(i)))
          in
          { Pipeline.stream_label = Printf.sprintf "irest%d" i; stages = split })
  in
  let physical_restore =
    {
      op_name = "Physical Restore";
      report = Pipeline.run ~clock:(fresh_clock ()) prest_streams;
      payload_bytes = img_result.Image_dump.bytes_written;
      stream_count = n;
    }
  in
  let pdst_fs = Fs.mount pdst_vol in
  (match Compare.trees ~src:(fs, "/home") ~dst:(pdst_fs, "/home") () with
  | Ok () -> ()
  | Error d ->
    failwith ("physical restore verification failed: " ^ String.concat "; " d));

  {
    cfg;
    tapes = n;
    files;
    fragmentation;
    logical_backup;
    logical_restore;
    physical_backup;
    physical_restore;
  }

(* ------------------------------------------------------------------ *)

let measure_volume_dump cfg ~cpu ~name ~bytes =
  let fs, vol = build_source { cfg with seed = cfg.seed + Hashtbl.hash name } ~cpu
      ~qtrees:1 ~bytes
  in
  let lib = (tape_libs cfg ~prefix:(name ^ "-t") 1).(0) in
  Fs.snapshot_create fs "dump";
  let view = Fs.snapshot_view fs "dump" in
  let result, stages =
    Instrument.collect
      ~resources:[ cpu; Volume.resource vol; Tape.resource (Library.drive lib) ]
      (fun observe ->
        Dump.run
          ~observe:(fun label f -> observe (name ^ " " ^ label) f)
          ~cpu ~costs:cfg.costs ~view ~subtree:(qtree_path 0) ~label:name
          ~date:(Fs.now fs) ~sink:(Tapeio.sink lib) ())
  in
  Fs.snapshot_delete fs "dump";
  (result, stages)

let run_concurrent cfg =
  let cpu = Resource.create "cpu" in
  let home_result, home_stages =
    measure_volume_dump cfg ~cpu ~name:"home" ~bytes:cfg.data_bytes
  in
  let rlse_result, rlse_stages =
    measure_volume_dump cfg ~cpu ~name:"rlse" ~bytes:(cfg.data_bytes * 2 / 3)
  in
  let solo name stages (result : Dump.result) =
    {
      op_name = name;
      report =
        Pipeline.run ~clock:(fresh_clock ())
          [ { Pipeline.stream_label = name; stages } ];
      payload_bytes = result.Dump.bytes_written;
      stream_count = 1;
    }
  in
  let home_solo = solo "home dump (solo)" home_stages home_result in
  let rlse_solo = solo "rlse dump (solo)" rlse_stages rlse_result in
  let combined =
    Pipeline.run ~clock:(fresh_clock ())
      [
        { Pipeline.stream_label = "home"; stages = home_stages };
        { Pipeline.stream_label = "rlse"; stages = rlse_stages };
      ]
  in
  let finish_of prefix =
    List.fold_left
      (fun acc (s : Pipeline.stage_summary) ->
        if String.length s.Pipeline.stage_label >= String.length prefix
           && String.equal (String.sub s.Pipeline.stage_label 0 (String.length prefix)) prefix
        then Float.max acc s.Pipeline.finish
        else acc)
      0.0 combined.Pipeline.stages
  in
  {
    home_solo;
    rlse_solo;
    combined;
    home_combined_elapsed = finish_of "home";
    rlse_combined_elapsed = finish_of "rlse";
  }

(* ------------------------------------------------------------------ *)

let stage_cpu s = Pipeline.stage_utilization s "cpu"

let stage_rate_prefix (s : Pipeline.stage_summary) prefix =
  let e = Pipeline.stage_elapsed s in
  if e <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc (name, bytes) ->
        if String.length name >= String.length prefix
           && String.equal (String.sub name 0 (String.length prefix)) prefix
        then acc +. (Float.of_int bytes /. 1_000_000.0 /. e)
        else acc)
      0.0 s.Pipeline.stage_bytes
