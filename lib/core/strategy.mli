(** The two backup strategies the paper compares. *)

type t =
  | Logical  (** file-based, BSD-dump style: portable, file-granular *)
  | Physical  (** block-based image dump: fast, scalable, all-or-nothing *)

val all : t list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
