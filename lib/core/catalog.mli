(** The backup catalog: what was backed up, when, how, and onto what.

    The operational memory a real backup system keeps so restores do not
    depend on an administrator remembering which cartridge holds which
    level. Serializable, so it can itself be stored off the protected
    volume. *)

type entry = {
  id : int;
  strategy : Strategy.t;
  label : string;  (** volume/subtree label *)
  level : int;  (** dump level (physical: 0 = full, >0 = incremental) *)
  date : float;
  bytes : int;
  drive : int;  (** stacker index the stream was written to *)
  stream : int;  (** stream index on that stacker (filemark count) *)
  media : string list;  (** cartridges the stream touches *)
  snapshot : string;  (** snapshot the backup captured ("" for logical) *)
  base_snapshot : string;  (** incremental base ("" if none) *)
}

type t

val create : unit -> t
val add : t -> entry -> entry
(** Assigns the id; returns the completed entry. *)

val entries : t -> entry list
(** Ascending id. *)

val find : t -> id:int -> entry option

val restore_chain : t -> label:string -> strategy:Strategy.t -> entry list
(** The newest full backup of [label] under [strategy] followed by the
    applicable incrementals, in application order: for logical dumps the
    classic level rules (each entry's level strictly greater than 0,
    keeping only the latest at each level); for physical dumps the
    base-snapshot chain. Empty if no full backup exists. *)

val encode : t -> string
val decode : string -> t
