(** The backup catalog: what was backed up, when, how, and onto what.

    The operational memory a real backup system keeps so restores do not
    depend on an administrator remembering which cartridge holds which
    level. Serializable, so it can itself be stored off the protected
    volume.

    Besides completed backups, the catalog holds {e checkpoints}: progress
    records for in-flight multi-part jobs, one per (strategy, label). A
    checkpoint lists the parts whose streams are already sealed on tape,
    so a job interrupted by a hard fault can resume
    ([Engine.backup_job] with [Job.make ~resume:true]) and re-dump only the unfinished
    parts. *)

type entry = {
  id : int;
  strategy : Strategy.t;
  label : string;  (** volume/subtree label *)
  level : int;  (** dump level (physical: 0 = full, >0 = incremental) *)
  date : float;
  bytes : int;
  drive : int;  (** stacker index the streams were written to *)
  stream : int;
      (** first stream index on that stacker (filemark count); equals
          [List.hd streams] — kept for single-stream callers *)
  streams : int list;
      (** stream index of each part, in part order; a classic
          single-stream backup has exactly one *)
  part_drives : int list;
      (** stacker each part's stream lives on, in part order, parallel to
          [streams]; a single-drive backup repeats [drive] *)
  part_hosts : string list;
      (** tape-server host each part's stream was shipped to, parallel to
          [streams]; [""] marks a locally attached drive *)
  media : string list;  (** cartridges the streams touch *)
  snapshot : string;  (** snapshot the backup captured ("" for logical) *)
  base_snapshot : string;  (** incremental base ("" if none) *)
  degraded : int;
      (** files skipped as unreadable during a logical dump (0 for a
          clean dump, and always 0 for physical — an image dump fails
          rather than degrade) *)
}

type part_done = {
  part : int;  (** part index, 0-based *)
  stream : int;  (** stream index its sealed data occupies *)
  drive : int;  (** stacker that stream was written to *)
  bytes : int;
  degraded : int;
}

type checkpoint = {
  ck_strategy : Strategy.t;
  ck_label : string;
  ck_level : int;
  ck_date : float;  (** dump date of the interrupted job *)
  ck_subtree : string;
  ck_drive : int;
  ck_drives : int list;
      (** the drive pool the job was launched with; [~resume:true] reuses
          it when the caller does not name one *)
  ck_parts : int;  (** total parts in the job *)
  ck_snapshot : string;  (** snapshot held open for the job's duration *)
  ck_base_snapshot : string;
  ck_media : string list;  (** cartridges touched so far *)
  ck_done : part_done list;  (** completed parts, ascending part order *)
}

type t

val create : unit -> t

val add : t -> entry -> entry
(** Assigns the id; returns the completed entry. *)

val entries : t -> entry list
(** Ascending id. *)

val find : t -> id:int -> entry option

val set_checkpoint : t -> checkpoint -> unit
(** Replaces any existing checkpoint for the same (strategy, label). *)

val find_checkpoint :
  t -> strategy:Strategy.t -> label:string -> checkpoint option

val clear_checkpoint : t -> strategy:Strategy.t -> label:string -> unit
val checkpoints : t -> checkpoint list

val restore_chain : t -> label:string -> strategy:Strategy.t -> entry list
(** The newest full backup of [label] under [strategy] followed by the
    applicable incrementals, in application order: for logical dumps the
    classic level rules (each entry's level strictly greater than 0,
    keeping only the latest at each level); for physical dumps the
    base-snapshot chain. Empty if no full backup exists. *)

val encode : t -> string
(** The current (v4) layout; see docs/FORMATS.md. *)

val decode : ?version:int -> string -> t
(** [decode ~version s] reads the layout embedded in a given store
    generation: 2 (RENG2 stores — no per-part drives), 3 (RENG3 — per-part
    drives, no hosts), or 4 (current, the default). Older entries come back
    with the missing fields defaulted: every part on the entry's recorded
    drive, every drive local. Raises [Invalid_argument] on an unknown
    version and {!Repro_util.Serde.Corrupt} on malformed bytes. *)
