type t = Logical | Physical

let all = [ Logical; Physical ]
let to_string = function Logical -> "logical" | Physical -> "physical"
let pp ppf t = Format.pp_print_string ppf (to_string t)
