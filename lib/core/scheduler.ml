module Sim = Repro_sim.Engine
module Pipeline = Repro_sim.Pipeline
module Resource_id = Repro_sim.Resource_id

type demand = { key : string; work : float }

let demand rid work = { key = Resource_id.to_key rid; work }
let demand_of_resource r work = { key = Repro_sim.Resource.name r; work }

(* ------------------------- multi-resource core ------------------------ *)

type slot = Resource_id.t
type claim = Exactly of slot | One_of of slot list

type 'a task = {
  t_label : string;
  t_ready : float;
  t_claims : claim list;
  t_run : now:float -> granted:slot list -> 'a * demand list;
}

let task ?(ready = 0.0) ~label ~claims run =
  { t_label = label; t_ready = ready; t_claims = claims; t_run = run }

type 'a grant = {
  g_value : 'a;
  g_slots : slot list;
  g_started : float;
  g_finished : float;
}

type 'a task_outcome =
  | Completed of 'a grant
  | Errored of { error : exn; slots : slot list; at : float }
  | Unran

type pool_stats = { p_elapsed : float; p_slots : (slot * float * int) list }

let eps = 1e-9

(* Self-profiling: each fair-share interval recomputation is timed on
   the host wall clock (the solver itself shows up as a child frame). *)
let p_interval = Repro_prof.Prof.probe "sched.interval"
let c_intervals = Repro_prof.Prof.counter "sched.interval_recomputes"

(* One in-flight task: side effects already done, only its simulated
   duration is still being played out. [remaining] is the fraction left. *)
type 'a flight = {
  f_task : int;
  f_slots : slot list;
  f_started : float;
  f_value : 'a;
  f_demands : (string * float) list;
  mutable f_remaining : float;
}

let slot_mem s l = List.exists (Resource_id.equal s) l
let slot_remove s l = List.filter (fun x -> not (Resource_id.equal s x)) l

let run_tasks ?(fatal = fun _ -> false) ?max_active ?on_complete ?on_interval
    ~slots tasks =
  if slots = [] then invalid_arg "Scheduler.run_tasks: empty slot pool";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let k = Resource_id.to_key s in
      if Hashtbl.mem seen k then
        invalid_arg
          (Printf.sprintf "Scheduler.run_tasks: duplicate slot %s in pool" k);
      Hashtbl.add seen k ())
    slots;
  let max_active =
    match max_active with
    | Some k when k >= 1 -> k
    | Some _ -> invalid_arg "Scheduler.run: max_active must be positive"
    | None -> List.length slots
  in
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let outcomes = Array.make n Unran in
  let sim = Sim.create () in
  let free = ref slots in
  let dead = Hashtbl.create 4 in
  let is_dead s = Hashtbl.mem dead (Resource_id.to_key s) in
  let kill s = Hashtbl.replace dead (Resource_id.to_key s) () in
  let aborted = ref false in
  let waiting = ref (List.init n Fun.id) in
  let active : 'a flight list ref = ref [] in
  let busy = Hashtbl.create 8 in
  let served = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let k = Resource_id.to_key s in
      Hashtbl.replace busy k (ref 0.0);
      Hashtbl.replace served k (ref 0))
    slots;
  (* Grant a task's claims greedily, in claim order, against the free
     list: [Exactly s] takes that very slot, [One_of set] the first free
     slot (free-list order: pool order, then release order) belonging to
     the set. All-or-nothing: on failure the free list is untouched. *)
  let try_grant claims =
    let rec go acc free = function
      | [] -> Some (List.rev acc, free)
      | Exactly s :: rest ->
        if slot_mem s free then go (s :: acc) (slot_remove s free) rest else None
      | One_of set :: rest -> (
        match List.find_opt (fun f -> slot_mem f set) free with
        | Some s -> go (s :: acc) (slot_remove s free) rest
        | None -> None)
    in
    match go [] !free claims with
    | Some (granted, rest) ->
      free := rest;
      Some granted
    | None -> None
  in
  (* A task none of whose claims can ever be satisfied again (a pinned
     slot died, or every slot of a pool died) is dropped from the queue;
     its outcome stays [Unran]. *)
  let doomed claims =
    List.exists
      (function
        | Exactly s -> is_dead s
        | One_of set -> set <> [] && List.for_all is_dead set)
      claims
  in
  let release s = if not (is_dead s) then free := !free @ [ s ] in
  (* Admit as many ready waiting tasks as free slots and [max_active]
     allow, scanning the queue in order. *)
  let rec admit () =
    if (not !aborted) && List.length !active < max_active && !free <> [] then begin
      let now = Sim.now sim in
      let rec pick acc = function
        | [] -> None
        | j :: rest ->
          if doomed tasks.(j).t_claims then begin
            waiting := List.rev_append acc rest;
            pick [] !waiting
          end
          else if tasks.(j).t_ready > now +. eps then pick (j :: acc) rest
          else (
            match try_grant tasks.(j).t_claims with
            | Some granted ->
              waiting := List.rev_append acc rest;
              Some (j, granted)
            | None -> pick (j :: acc) rest)
      in
      match pick [] !waiting with
      | None -> ()
      | Some (j, granted) ->
        let started = Sim.now sim in
        List.iter
          (fun s -> incr (Hashtbl.find served (Resource_id.to_key s)))
          granted;
        (match tasks.(j).t_run ~now:started ~granted with
        | value, demands ->
          let demands =
            List.filter_map
              (fun d -> if d.work > eps then Some (d.key, d.work) else None)
              demands
          in
          active :=
            !active
            @ [
                {
                  f_task = j;
                  f_slots = granted;
                  f_started = started;
                  f_value = value;
                  f_demands = demands;
                  f_remaining = 1.0;
                };
              ]
        | exception error ->
          outcomes.(j) <- Errored { error; slots = granted; at = started };
          if fatal error then List.iter kill granted
          else begin
            aborted := true;
            List.iter release granted
          end);
        admit ()
    end
  in
  (* Arm the next completion: solve fair-share rates for the in-flight
     set, advance to the earliest finish, complete everything that
     reaches zero, refill, repeat. A ready-time wake-up admitting new
     flights mid-interval settles the elapsed progress at the old rates
     first, then re-arms (bumping [epoch] to void the stale event). *)
  let epoch = ref 0 in
  let t_solved = ref 0.0 in
  let rates = ref [||] in
  let solved = ref [] in
  (* Charge progress over [t_solved, now) at the solved rates and
     complete every flight that reaches zero. *)
  let settle () =
    let now = Sim.now sim in
    let dt = now -. !t_solved in
    if dt > 0.0 && !solved <> [] then begin
      (* Report the interval that just elapsed: each resource key's
         utilization is the service it delivered per second, summed
         over the in-flight set at the solved rates. *)
      (match on_interval with
      | Some h ->
        let utils = Hashtbl.create 8 in
        List.iteri
          (fun i f ->
            List.iter
              (fun (key, work) ->
                let cur =
                  match Hashtbl.find_opt utils key with
                  | Some u -> u
                  | None -> 0.0
                in
                Hashtbl.replace utils key (cur +. (!rates.(i) *. work)))
              f.f_demands)
          !solved;
        h ~t0:!t_solved ~t1:now
          (List.sort compare (Hashtbl.fold (fun k u acc -> (k, u) :: acc) utils []))
      | None -> ());
      List.iteri
        (fun i f -> f.f_remaining <- f.f_remaining -. (!rates.(i) *. dt))
        !solved
    end;
    t_solved := now;
    let finished, still =
      List.partition (fun f -> f.f_remaining <= eps) !active
    in
    active := still;
    List.iter
      (fun f ->
        let g =
          {
            g_value = f.f_value;
            g_slots = f.f_slots;
            g_started = f.f_started;
            g_finished = now;
          }
        in
        outcomes.(f.f_task) <- Completed g;
        List.iter
          (fun s ->
            let b = Hashtbl.find busy (Resource_id.to_key s) in
            b := !b +. (now -. f.f_started);
            release s)
          f.f_slots;
        match on_complete with Some h -> h f.f_task g | None -> ())
      finished
  in
  let rec arm () =
    match !active with
    | [] -> ()
    | flights ->
      let tok = Repro_prof.Prof.enter p_interval in
      let r =
        Pipeline.fair_share
          (Array.of_list (List.map (fun f -> f.f_demands) flights))
      in
      let _, dt =
        List.fold_left
          (fun (i, acc) f ->
            (i + 1, Float.min acc (f.f_remaining /. Float.max r.(i) eps)))
          (0, infinity) flights
      in
      let dt = Float.max dt 0.0 in
      Repro_prof.Prof.leave tok;
      Repro_prof.Prof.bump c_intervals;
      rates := r;
      solved := flights;
      t_solved := Sim.now sim;
      incr epoch;
      let e = !epoch in
      Sim.schedule_in sim dt (fun () ->
          if e = !epoch then begin
            incr epoch;
            settle ();
            admit ();
            arm ()
          end)
  in
  (* Wake the admission scan when a not-yet-ready task's window opens.
     Settling first keeps the in-flight progress accounting exact even
     though the armed completion event is now stale. *)
  let ready_times =
    List.sort_uniq compare
      (List.filter_map
         (fun t -> if t.t_ready > eps then Some t.t_ready else None)
         (Array.to_list tasks))
  in
  List.iter
    (fun r ->
      Sim.schedule_at sim r (fun () ->
          if not !aborted then begin
            if !active <> [] then begin
              incr epoch;
              settle ()
            end;
            admit ();
            arm ()
          end))
    ready_times;
  admit ();
  arm ();
  Sim.run sim;
  let p_slots =
    List.map
      (fun s ->
        let k = Resource_id.to_key s in
        (s, !(Hashtbl.find busy k), !(Hashtbl.find served k)))
      slots
  in
  (outcomes, { p_elapsed = Sim.now sim; p_slots })

(* ------------------- the drive pool, as an instance ------------------- *)

type 'a job = {
  label : string;
  pin : int option;
  execute : drive:int -> 'a * demand list;
}

type 'a completion = { value : 'a; drive : int; started : float; finished : float }

type 'a outcome =
  | Done of 'a completion
  | Failed of { error : exn; drive : int; at : float }
  | Skipped

type stats = { elapsed : float; per_drive : (int * float * int) list }

let drive_of = function
  | Resource_id.Drive d -> d
  | s ->
    invalid_arg
      (Printf.sprintf "Scheduler.run: non-drive slot %s" (Resource_id.to_key s))

let run ?fatal ?max_active ?on_complete ?on_interval ~drives jobs =
  if drives = [] then invalid_arg "Scheduler.run: empty drive pool";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d then
        invalid_arg "Scheduler.run: duplicate drive in pool";
      Hashtbl.add seen d ())
    drives;
  let slots = List.map (fun d -> Resource_id.Drive d) drives in
  let tasks =
    List.map
      (fun j ->
        {
          t_label = j.label;
          t_ready = 0.0;
          t_claims =
            [
              (match j.pin with
              | Some d -> Exactly (Resource_id.Drive d)
              | None -> One_of slots);
            ];
          t_run =
            (fun ~now:_ ~granted ->
              match granted with
              | [ s ] -> j.execute ~drive:(drive_of s)
              | _ -> assert false);
        })
      jobs
  in
  let on_complete =
    Option.map
      (fun h i (g : _ grant) ->
        h i
          {
            value = g.g_value;
            drive = drive_of (List.hd g.g_slots);
            started = g.g_started;
            finished = g.g_finished;
          })
      on_complete
  in
  let outcomes, ps =
    run_tasks ?fatal ?max_active ?on_complete ?on_interval ~slots tasks
  in
  ( Array.map
      (function
        | Completed g ->
          Done
            {
              value = g.g_value;
              drive = drive_of (List.hd g.g_slots);
              started = g.g_started;
              finished = g.g_finished;
            }
        | Errored { error; slots; at } ->
          Failed { error; drive = drive_of (List.hd slots); at }
        | Unran -> Skipped)
      outcomes,
    {
      elapsed = ps.p_elapsed;
      per_drive = List.map (fun (s, b, n) -> (drive_of s, b, n)) ps.p_slots;
    } )
