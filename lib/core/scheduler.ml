module Sim = Repro_sim.Engine
module Pipeline = Repro_sim.Pipeline

type demand = { key : string; work : float }

type 'a job = {
  label : string;
  pin : int option;
  execute : drive:int -> 'a * demand list;
}

type 'a completion = { value : 'a; drive : int; started : float; finished : float }

type 'a outcome =
  | Done of 'a completion
  | Failed of { error : exn; drive : int; at : float }
  | Skipped

type stats = { elapsed : float; per_drive : (int * float * int) list }

let eps = 1e-9

(* Self-profiling: each fair-share interval recomputation is timed on
   the host wall clock (the solver itself shows up as a child frame). *)
let p_interval = Repro_prof.Prof.probe "sched.interval"
let c_intervals = Repro_prof.Prof.counter "sched.interval_recomputes"

(* One in-flight job: side effects already done, only its simulated
   duration is still being played out. [remaining] is the fraction left. *)
type 'a flight = {
  f_job : int;
  f_drive : int;
  f_started : float;
  f_value : 'a;
  f_demands : (string * float) list;
  mutable f_remaining : float;
}

let run ?(fatal = fun _ -> false) ?max_active ?on_complete ?on_interval ~drives
    jobs =
  if drives = [] then invalid_arg "Scheduler.run: empty drive pool";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d then invalid_arg "Scheduler.run: duplicate drive in pool";
      Hashtbl.add seen d ())
    drives;
  let max_active =
    match max_active with
    | Some k when k >= 1 -> k
    | Some _ -> invalid_arg "Scheduler.run: max_active must be positive"
    | None -> List.length drives
  in
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let outcomes = Array.make n Skipped in
  let sim = Sim.create () in
  let free = ref drives in
  let dead = Hashtbl.create 4 in
  let aborted = ref false in
  let waiting = ref (List.init n Fun.id) in
  let active : 'a flight list ref = ref [] in
  let busy = Hashtbl.create 8 in
  let served = Hashtbl.create 8 in
  List.iter
    (fun d ->
      Hashtbl.replace busy d (ref 0.0);
      Hashtbl.replace served d (ref 0))
    drives;
  let take_drive = function
    | Some d ->
      if List.mem d !free then begin
        free := List.filter (fun x -> x <> d) !free;
        Some d
      end
      else None
    | None -> (
      match !free with
      | d :: rest ->
        free := rest;
        Some d
      | [] -> None)
  in
  let release d = if not (Hashtbl.mem dead d) then free := !free @ [ d ] in
  (* Admit as many waiting jobs as drives and [max_active] allow, scanning
     the queue in order. A job pinned to a dead drive can never run and is
     dropped from the queue (its outcome stays [Skipped]). *)
  let rec admit () =
    if (not !aborted) && List.length !active < max_active && !free <> [] then begin
      let rec pick acc = function
        | [] -> None
        | j :: rest -> (
          match jobs.(j).pin with
          | Some d when Hashtbl.mem dead d ->
            waiting := List.rev_append acc rest;
            pick [] !waiting
          | pin -> (
            match take_drive pin with
            | Some d ->
              waiting := List.rev_append acc rest;
              Some (j, d)
            | None -> pick (j :: acc) rest))
      in
      match pick [] !waiting with
      | None -> ()
      | Some (j, drive) ->
        let started = Sim.now sim in
        incr (Hashtbl.find served drive);
        (match jobs.(j).execute ~drive with
        | value, demands ->
          let demands =
            List.filter_map
              (fun d -> if d.work > eps then Some (d.key, d.work) else None)
              demands
          in
          active :=
            !active
            @ [
                {
                  f_job = j;
                  f_drive = drive;
                  f_started = started;
                  f_value = value;
                  f_demands = demands;
                  f_remaining = 1.0;
                };
              ]
        | exception error ->
          outcomes.(j) <- Failed { error; drive; at = started };
          if fatal error then Hashtbl.replace dead drive ()
          else begin
            aborted := true;
            release drive
          end);
        admit ()
    end
  in
  (* Arm the next completion: solve fair-share rates for the in-flight
     set, advance to the earliest finish, complete everything that
     reaches zero, refill, repeat. One event in the heap at a time. *)
  let rec arm () =
    match !active with
    | [] -> ()
    | flights ->
      let tok = Repro_prof.Prof.enter p_interval in
      let rates =
        Pipeline.fair_share (Array.of_list (List.map (fun f -> f.f_demands) flights))
      in
      let _, dt =
        List.fold_left
          (fun (i, acc) f ->
            (i + 1, Float.min acc (f.f_remaining /. Float.max rates.(i) eps)))
          (0, infinity) flights
      in
      let dt = Float.max dt 0.0 in
      Repro_prof.Prof.leave tok;
      Repro_prof.Prof.bump c_intervals;
      Sim.schedule_in sim dt (fun () ->
          let now = Sim.now sim in
          (* Report the interval that just elapsed: each resource key's
             utilization is the service it delivered per second,
             summed over the in-flight set at the solved rates. *)
          (match on_interval with
          | Some h when dt > 0.0 ->
            let utils = Hashtbl.create 8 in
            List.iteri
              (fun i f ->
                List.iter
                  (fun (key, work) ->
                    let cur =
                      match Hashtbl.find_opt utils key with
                      | Some u -> u
                      | None -> 0.0
                    in
                    Hashtbl.replace utils key (cur +. (rates.(i) *. work)))
                  f.f_demands)
              flights;
            h ~t0:(now -. dt) ~t1:now
              (List.sort compare
                 (Hashtbl.fold (fun k u acc -> (k, u) :: acc) utils []))
          | Some _ | None -> ());
          List.iteri
            (fun i f -> f.f_remaining <- f.f_remaining -. (rates.(i) *. dt))
            flights;
          let finished, still =
            List.partition (fun f -> f.f_remaining <= eps) flights
          in
          active := still;
          List.iter
            (fun f ->
              let c =
                {
                  value = f.f_value;
                  drive = f.f_drive;
                  started = f.f_started;
                  finished = now;
                }
              in
              outcomes.(f.f_job) <- Done c;
              let b = Hashtbl.find busy f.f_drive in
              b := !b +. (now -. f.f_started);
              release f.f_drive;
              match on_complete with Some h -> h f.f_job c | None -> ())
            finished;
          admit ();
          arm ())
  in
  admit ();
  arm ();
  Sim.run sim;
  let per_drive =
    List.map (fun d -> (d, !(Hashtbl.find busy d), !(Hashtbl.find served d))) drives
  in
  (outcomes, { elapsed = Sim.now sim; per_drive })
