type entry = {
  id : int;
  strategy : Strategy.t;
  label : string;
  level : int;
  date : float;
  bytes : int;
  drive : int;
  stream : int;
  streams : int list;
  part_drives : int list;
  part_hosts : string list;
  media : string list;
  snapshot : string;
  base_snapshot : string;
  degraded : int;
}

type part_done = {
  part : int;
  stream : int;
  drive : int;
  bytes : int;
  degraded : int;
}

type checkpoint = {
  ck_strategy : Strategy.t;
  ck_label : string;
  ck_level : int;
  ck_date : float;
  ck_subtree : string;
  ck_drive : int;
  ck_drives : int list;
  ck_parts : int;
  ck_snapshot : string;
  ck_base_snapshot : string;
  ck_media : string list;
  ck_done : part_done list; (* ascending part order *)
}

type t = {
  mutable next_id : int;
  mutable items : entry list; (* newest first *)
  mutable checkpoints : checkpoint list; (* keyed (strategy, label) *)
}

let create () = { next_id = 1; items = []; checkpoints = [] }

let add t entry =
  let entry = { entry with id = t.next_id } in
  t.next_id <- t.next_id + 1;
  t.items <- entry :: t.items;
  entry

let entries t = List.rev t.items
let find t ~id = List.find_opt (fun e -> e.id = id) t.items

let ck_matches ~strategy ~label ck =
  ck.ck_strategy = strategy && String.equal ck.ck_label label

let set_checkpoint t ck =
  t.checkpoints <-
    ck
    :: List.filter
         (fun c -> not (ck_matches ~strategy:ck.ck_strategy ~label:ck.ck_label c))
         t.checkpoints

let find_checkpoint t ~strategy ~label =
  List.find_opt (ck_matches ~strategy ~label) t.checkpoints

let clear_checkpoint t ~strategy ~label =
  t.checkpoints <-
    List.filter (fun c -> not (ck_matches ~strategy ~label c)) t.checkpoints

let checkpoints t = List.rev t.checkpoints

let restore_chain t ~label ~strategy =
  let matching =
    List.filter
      (fun e -> String.equal e.label label && e.strategy = strategy)
      (entries t)
  in
  (* Newest full backup. *)
  let fulls = List.filter (fun e -> e.level = 0) matching in
  match List.rev fulls with
  | [] -> []
  | full :: _ ->
    let after = List.filter (fun e -> e.id > full.id && e.level > 0) matching in
    (match strategy with
    | Strategy.Physical ->
      (* Follow the base-snapshot chain from the full. *)
      let rec follow base acc =
        match
          List.find_opt (fun e -> String.equal e.base_snapshot base) after
        with
        | Some next when not (List.memq next acc) ->
          follow next.snapshot (next :: acc)
        | Some _ | None -> List.rev acc
      in
      full :: follow full.snapshot []
    | Strategy.Logical ->
      (* Classic dump rules: walk forward keeping entries whose level
         exceeds the last kept entry's level; a repeat of a level
         supersedes earlier dumps at or above it. *)
      let chain =
        List.fold_left
          (fun kept e ->
            let kept = List.filter (fun k -> k.level < e.level) kept in
            kept @ [ e ])
          [] after
      in
      full :: chain)

let strategy_byte = function Strategy.Logical -> 0 | Strategy.Physical -> 1

let strategy_of_byte = function
  | 0 -> Strategy.Logical
  | 1 -> Strategy.Physical
  | k -> raise (Repro_util.Serde.Corrupt (Printf.sprintf "bad strategy %d" k))

let encode t =
  let open Repro_util.Serde in
  let w = writer () in
  write_u32 w t.next_id;
  let items = entries t in
  write_u32 w (List.length items);
  List.iter
    (fun e ->
      write_u32 w e.id;
      write_u8 w (strategy_byte e.strategy);
      write_string w e.label;
      write_u8 w e.level;
      write_u64 w (Int64.bits_of_float e.date);
      write_int w e.bytes;
      write_u16 w e.drive;
      write_u16 w (List.length e.streams);
      List.iter (fun s -> write_u16 w s) e.streams;
      write_u16 w (List.length e.part_drives);
      List.iter (fun d -> write_u16 w d) e.part_drives;
      write_u16 w (List.length e.part_hosts);
      List.iter (fun h -> write_string w h) e.part_hosts;
      write_u16 w (List.length e.media);
      List.iter (fun m -> write_string w m) e.media;
      write_string w e.snapshot;
      write_string w e.base_snapshot;
      write_u32 w e.degraded)
    items;
  let cks = checkpoints t in
  write_u16 w (List.length cks);
  List.iter
    (fun ck ->
      write_u8 w (strategy_byte ck.ck_strategy);
      write_string w ck.ck_label;
      write_u8 w ck.ck_level;
      write_u64 w (Int64.bits_of_float ck.ck_date);
      write_string w ck.ck_subtree;
      write_u16 w ck.ck_drive;
      write_u16 w (List.length ck.ck_drives);
      List.iter (fun d -> write_u16 w d) ck.ck_drives;
      write_u16 w ck.ck_parts;
      write_string w ck.ck_snapshot;
      write_string w ck.ck_base_snapshot;
      write_u16 w (List.length ck.ck_media);
      List.iter (fun m -> write_string w m) ck.ck_media;
      write_u16 w (List.length ck.ck_done);
      List.iter
        (fun d ->
          write_u16 w d.part;
          write_u16 w d.stream;
          write_u16 w d.drive;
          write_int w d.bytes;
          write_u32 w d.degraded)
        ck.ck_done)
    cks;
  contents w

let decode ?(version = 4) s =
  let open Repro_util.Serde in
  if version < 2 || version > 4 then
    invalid_arg (Printf.sprintf "Catalog.decode: unknown layout v%d" version);
  let r = reader s in
  let next_id = read_u32 r in
  let n = read_u32 r in
  let items =
    List.init n (fun _ ->
        let id = read_u32 r in
        let strategy = strategy_of_byte (read_u8 r) in
        let label = read_string r in
        let level = read_u8 r in
        let date = Int64.float_of_bits (read_u64 r) in
        let bytes = read_int r in
        let drive = read_u16 r in
        let nstreams = read_u16 r in
        let streams = List.init nstreams (fun _ -> read_u16 r) in
        let part_drives =
          if version >= 3 then
            let ndrives = read_u16 r in
            List.init ndrives (fun _ -> read_u16 r)
          else
            (* v2 predates multi-drive part placement: every stream of an
               entry lived on its single recorded drive. *)
            List.map (fun _ -> drive) streams
        in
        let part_hosts =
          if version >= 4 then
            let nhosts = read_u16 r in
            List.init nhosts (fun _ -> read_string r)
          else
            (* Pre-network catalogs only knew locally attached drives. *)
            List.map (fun _ -> "") streams
        in
        let nmedia = read_u16 r in
        let media = List.init nmedia (fun _ -> read_string r) in
        let snapshot = read_string r in
        let base_snapshot = read_string r in
        let degraded = read_u32 r in
        let stream = match streams with s :: _ -> s | [] -> 0 in
        {
          id;
          strategy;
          label;
          level;
          date;
          bytes;
          drive;
          stream;
          streams;
          part_drives;
          part_hosts;
          media;
          snapshot;
          base_snapshot;
          degraded;
        })
  in
  let ncks = read_u16 r in
  let cks =
    List.init ncks (fun _ ->
        let ck_strategy = strategy_of_byte (read_u8 r) in
        let ck_label = read_string r in
        let ck_level = read_u8 r in
        let ck_date = Int64.float_of_bits (read_u64 r) in
        let ck_subtree = read_string r in
        let ck_drive = read_u16 r in
        let ck_drives =
          if version >= 3 then
            let nds = read_u16 r in
            List.init nds (fun _ -> read_u16 r)
          else []
        in
        let ck_parts = read_u16 r in
        let ck_snapshot = read_string r in
        let ck_base_snapshot = read_string r in
        let nmedia = read_u16 r in
        let ck_media = List.init nmedia (fun _ -> read_string r) in
        let ndone = read_u16 r in
        let ck_done =
          List.init ndone (fun _ ->
              let part = read_u16 r in
              let stream = read_u16 r in
              let drive = if version >= 3 then read_u16 r else ck_drive in
              let bytes = read_int r in
              let degraded = read_u32 r in
              { part; stream; drive; bytes; degraded })
        in
        {
          ck_strategy;
          ck_label;
          ck_level;
          ck_date;
          ck_subtree;
          ck_drive;
          ck_drives;
          ck_parts;
          ck_snapshot;
          ck_base_snapshot;
          ck_media;
          ck_done;
        })
  in
  { next_id; items = List.rev items; checkpoints = List.rev cks }
