type entry = {
  id : int;
  strategy : Strategy.t;
  label : string;
  level : int;
  date : float;
  bytes : int;
  drive : int;
  stream : int;
  media : string list;
  snapshot : string;
  base_snapshot : string;
}

type t = { mutable next_id : int; mutable items : entry list (* newest first *) }

let create () = { next_id = 1; items = [] }

let add t entry =
  let entry = { entry with id = t.next_id } in
  t.next_id <- t.next_id + 1;
  t.items <- entry :: t.items;
  entry

let entries t = List.rev t.items
let find t ~id = List.find_opt (fun e -> e.id = id) t.items

let restore_chain t ~label ~strategy =
  let matching =
    List.filter
      (fun e -> String.equal e.label label && e.strategy = strategy)
      (entries t)
  in
  (* Newest full backup. *)
  let fulls = List.filter (fun e -> e.level = 0) matching in
  match List.rev fulls with
  | [] -> []
  | full :: _ ->
    let after = List.filter (fun e -> e.id > full.id && e.level > 0) matching in
    (match strategy with
    | Strategy.Physical ->
      (* Follow the base-snapshot chain from the full. *)
      let rec follow base acc =
        match
          List.find_opt (fun e -> String.equal e.base_snapshot base) after
        with
        | Some next when not (List.memq next acc) ->
          follow next.snapshot (next :: acc)
        | Some _ | None -> List.rev acc
      in
      full :: follow full.snapshot []
    | Strategy.Logical ->
      (* Classic dump rules: walk forward keeping entries whose level
         exceeds the last kept entry's level; a repeat of a level
         supersedes earlier dumps at or above it. *)
      let chain =
        List.fold_left
          (fun kept e ->
            let kept = List.filter (fun k -> k.level < e.level) kept in
            kept @ [ e ])
          [] after
      in
      full :: chain)

let encode t =
  let open Repro_util.Serde in
  let w = writer () in
  write_u32 w t.next_id;
  let items = entries t in
  write_u32 w (List.length items);
  List.iter
    (fun e ->
      write_u32 w e.id;
      write_u8 w (match e.strategy with Strategy.Logical -> 0 | Strategy.Physical -> 1);
      write_string w e.label;
      write_u8 w e.level;
      write_u64 w (Int64.bits_of_float e.date);
      write_int w e.bytes;
      write_u16 w e.drive;
      write_u16 w e.stream;
      write_u16 w (List.length e.media);
      List.iter (fun m -> write_string w m) e.media;
      write_string w e.snapshot;
      write_string w e.base_snapshot)
    items;
  contents w

let decode s =
  let open Repro_util.Serde in
  let r = reader s in
  let next_id = read_u32 r in
  let n = read_u32 r in
  let items =
    List.init n (fun _ ->
        let id = read_u32 r in
        let strategy =
          match read_u8 r with
          | 0 -> Strategy.Logical
          | 1 -> Strategy.Physical
          | k -> raise (Corrupt (Printf.sprintf "bad strategy %d" k))
        in
        let label = read_string r in
        let level = read_u8 r in
        let date = Int64.float_of_bits (read_u64 r) in
        let bytes = read_int r in
        let drive = read_u16 r in
        let stream = read_u16 r in
        let nmedia = read_u16 r in
        let media = List.init nmedia (fun _ -> read_string r) in
        let snapshot = read_string r in
        let base_snapshot = read_string r in
        {
          id;
          strategy;
          label;
          level;
          date;
          bytes;
          drive;
          stream;
          media;
          snapshot;
          base_snapshot;
        })
  in
  { next_id; items = List.rev items }
