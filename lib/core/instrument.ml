module Resource = Repro_sim.Resource
module Pipeline = Repro_sim.Pipeline
module Obs = Repro_obs.Obs

(* Each observed region is one span on the armed obs plane AND one
   pipeline stage; the measured region is identical, so Tables 2-5 and a
   trace of the same run agree by construction. The per-resource demands
   are annotated onto the span as it closes. *)
let collect ~resources f =
  let stages = ref [] in
  let observe label work =
    Obs.with_span label (fun () ->
        let before =
          List.map (fun r -> (r, Resource.busy r, Resource.bytes r)) resources
        in
        work ();
        let demands =
          List.filter_map
            (fun (r, busy0, bytes0) ->
              let dbusy = Resource.busy r -. busy0 in
              let dbytes = Resource.bytes r - bytes0 in
              if dbusy > 0.0 || dbytes > 0 then
                Some (Pipeline.demand ~bytes:dbytes r dbusy)
              else None)
            before
        in
        Obs.annotate
          (List.map
             (fun (d : Pipeline.demand) ->
               ("busy:" ^ Resource.name d.Pipeline.resource, Obs.Float d.Pipeline.work))
             demands);
        stages := Pipeline.stage label demands :: !stages)
  in
  let result = f observe in
  (result, List.rev !stages)

let add_demand stages ~stage demand =
  List.map
    (fun (s : Pipeline.stage) ->
      if String.equal s.Pipeline.label stage then
        Pipeline.stage s.Pipeline.label (s.Pipeline.demands @ [ demand ])
      else s)
    stages

let scale_stages stages factor =
  List.map
    (fun (s : Pipeline.stage) ->
      Pipeline.stage s.Pipeline.label
        (List.map
           (fun (d : Pipeline.demand) ->
             Pipeline.demand
               ~bytes:(Float.to_int (Float.of_int d.Pipeline.bytes *. factor))
               d.Pipeline.resource
               (d.Pipeline.work *. factor))
           s.Pipeline.demands))
    stages

let retarget stages ~from_prefix ~to_resource =
  let matches r =
    let name = Resource.name r in
    String.length name >= String.length from_prefix
    && String.equal (String.sub name 0 (String.length from_prefix)) from_prefix
  in
  List.map
    (fun (s : Pipeline.stage) ->
      Pipeline.stage s.Pipeline.label
        (List.map
           (fun (d : Pipeline.demand) ->
             if matches d.Pipeline.resource then
               Pipeline.demand ~bytes:d.Pipeline.bytes to_resource d.Pipeline.work
             else d)
           s.Pipeline.demands))
    stages
