module Pipeline = Repro_sim.Pipeline
module Blockmap = Repro_wafl.Blockmap
module Analysis = Repro_obs.Analysis

let hline ppf width = Format.fprintf ppf "%s@." (String.make width '-')

let pct f = Printf.sprintf "%.0f%%" (100.0 *. f)

let dur s =
  if s < 120.0 then Printf.sprintf "%.1f s" s
  else if s < 7200.0 then Printf.sprintf "%.1f min" (s /. 60.0)
  else Printf.sprintf "%.2f h" (s /. 3600.0)

(* ------------------------------------------------------------------ *)

let table1 ppf =
  Format.fprintf ppf "Table 1: Block states for incremental image dump@.";
  hline ppf 72;
  Format.fprintf ppf "%-12s %-12s %s@." "Bit plane A" "Bit plane B" "Block state";
  hline ppf 72;
  List.iter
    (fun (a, b) ->
      let state = Blockmap.block_state ~in_base:a ~in_target:b in
      let desc =
        match state with
        | Blockmap.Not_in_either -> "not in either snapshot"
        | Blockmap.Newly_written -> "newly written - include in incremental"
        | Blockmap.Deleted -> "deleted, no need to include"
        | Blockmap.Unchanged -> "needed, but not changed since full dump"
      in
      let included = if Blockmap.state_included state then " [dumped]" else "" in
      Format.fprintf ppf "%-12d %-12d %s%s@." (Bool.to_int a) (Bool.to_int b) desc
        included)
    [ (false, false); (false, true); (true, false); (true, true) ];
  hline ppf 72

(* ------------------------------------------------------------------ *)

(* Paper Table 2 rates over the 188 GB home volume, derived from the
   Table 3 stage times. *)
let paper_table2 =
  [
    ("Logical Backup", 7.43, 7.03);
    ("Logical Restore", 8.00, 6.53);
    ("Physical Backup", 6.22, 8.39);
    ("Physical Restore", 5.90, 8.85);
  ]

let table2 ppf (b : Experiment.basic) =
  Format.fprintf ppf
    "Table 2: Basic backup and restore performance (1 tape drive)@.";
  Format.fprintf ppf
    "  paper: 188 GB mature volume; measured: %d MiB aged volume (%d files, %.0f%%%s@."
    (b.Experiment.cfg.Experiment.data_bytes / 1024 / 1024)
    b.Experiment.files
    (100.0 *. b.Experiment.fragmentation)
    " fragmented)";
  hline ppf 96;
  Format.fprintf ppf "%-18s | %12s %10s %10s | %12s %10s | %8s@." "Operation"
    "elapsed" "MB/s" "GB/h" "paper elaps" "paper MB/s" "ratio";
  hline ppf 96;
  let ops =
    [
      b.Experiment.logical_backup;
      b.Experiment.logical_restore;
      b.Experiment.physical_backup;
      b.Experiment.physical_restore;
    ]
  in
  List.iter
    (fun (op : Experiment.operation) ->
      let name = op.Experiment.op_name in
      let p_h, p_mbs =
        match List.assoc_opt name (List.map (fun (n, h, m) -> (n, (h, m))) paper_table2) with
        | Some (h, m) -> (h, m)
        | None -> (0.0, 0.0)
      in
      Format.fprintf ppf "%-18s | %12s %10.2f %10.1f | %10.2f h %10.2f | %8.2f@."
        name
        (dur (Experiment.elapsed op))
        (Experiment.mb_s op) (Experiment.gb_h op) p_h p_mbs
        (Experiment.mb_s op /. p_mbs))
    ops;
  hline ppf 96;
  let l = Experiment.mb_s b.Experiment.logical_backup in
  let p = Experiment.mb_s b.Experiment.physical_backup in
  Format.fprintf ppf
    "  physical/logical backup throughput: measured %.2fx (paper ~1.2x);@." (p /. l);
  let lr = Experiment.mb_s b.Experiment.logical_restore in
  let pr = Experiment.mb_s b.Experiment.physical_restore in
  Format.fprintf ppf "  physical/logical restore throughput: measured %.2fx (paper ~1.36x)@."
    (pr /. lr)

(* ------------------------------------------------------------------ *)

(* (operation, our stage label, paper stage name, paper time (s), paper CPU) *)
let paper_table3 =
  [
    ("Logical Backup", "creating snapshot", "Creating snapshot", 30.0, 0.50);
    ("Logical Backup", "mapping", "Mapping files and directories", 1200.0, 0.30);
    ("Logical Backup", "dumping directories", "Dumping directories", 1200.0, 0.20);
    ("Logical Backup", "dumping files", "Dumping files", 24300.0, 0.25);
    ("Logical Backup", "deleting snapshot", "Deleting snapshot", 35.0, 0.50);
    ("Logical Restore", "creating files", "Creating files", 7200.0, 0.30);
    ("Logical Restore", "filling in data", "Filling in data", 21600.0, 0.40);
    ("Physical Backup", "creating snapshot", "Creating snapshot", 30.0, 0.50);
    ("Physical Backup", "dumping blocks", "Dumping blocks", 22320.0, 0.05);
    ("Physical Backup", "deleting snapshot", "Deleting snapshot", 35.0, 0.50);
    ("Physical Restore", "restoring blocks", "Restoring blocks", 21240.0, 0.11);
  ]

let find_stage (op : Experiment.operation) label =
  List.find_opt
    (fun (s : Pipeline.stage_summary) -> String.equal s.Pipeline.stage_label label)
    op.Experiment.report.Pipeline.stages

let stage_rows ppf (op : Experiment.operation) rows =
  Format.fprintf ppf "%s@." op.Experiment.op_name;
  List.iter
    (fun (_, our_label, paper_name, paper_s, paper_cpu) ->
      match find_stage op our_label with
      | Some s ->
        Format.fprintf ppf "  %-32s | %10s %7s | %10s %7s@." paper_name
          (dur (Pipeline.stage_elapsed s))
          (pct (Experiment.stage_cpu s))
          (dur paper_s) (pct paper_cpu)
      | None ->
        Format.fprintf ppf "  %-32s | %10s %7s | %10s %7s@." paper_name "-" "-"
          (dur paper_s) (pct paper_cpu))
    rows

let table3 ppf (b : Experiment.basic) =
  Format.fprintf ppf "Table 3: Dump and restore details (1 tape drive)@.";
  hline ppf 88;
  Format.fprintf ppf "  %-32s | %10s %7s | %10s %7s@." "Stage" "elapsed" "CPU"
    "paper" "CPU";
  hline ppf 88;
  List.iter
    (fun (op : Experiment.operation) ->
      let rows =
        List.filter (fun (o, _, _, _, _) -> String.equal o op.Experiment.op_name)
          paper_table3
      in
      stage_rows ppf op rows)
    [
      b.Experiment.logical_backup;
      b.Experiment.logical_restore;
      b.Experiment.physical_backup;
      b.Experiment.physical_restore;
    ];
  hline ppf 88;
  (* the paper's headline CPU comparison *)
  let cpu_of op label =
    match find_stage op label with Some s -> Experiment.stage_cpu s | None -> 0.0
  in
  let ld = cpu_of b.Experiment.logical_backup "dumping files" in
  let pd = cpu_of b.Experiment.physical_backup "dumping blocks" in
  let lr = cpu_of b.Experiment.logical_restore "filling in data" in
  let pr = cpu_of b.Experiment.physical_restore "restoring blocks" in
  Format.fprintf ppf
    "  logical dump CPU / physical dump CPU: measured %.1fx (paper 5x)@."
    (ld /. Float.max pd 1e-9);
  Format.fprintf ppf
    "  logical restore CPU / physical restore CPU: measured %.1fx (paper >3x)@."
    (lr /. Float.max pr 1e-9)

(* ------------------------------------------------------------------ *)

(* Paper Tables 4 and 5: per-stage elapsed and CPU on 2 and 4 drives. *)
let paper_parallel tapes =
  match tapes with
  | 2 ->
    [
      ("Logical Backup", "mapping", "Mapping", 900.0, 0.50);
      ("Logical Backup", "dumping directories", "Directories", 900.0, 0.40);
      ("Logical Backup", "dumping files", "Files", 14400.0, 0.50);
      ("Logical Restore", "creating files", "Creating files", 4500.0, 0.53);
      ("Logical Restore", "filling in data", "Filling in data", 12600.0, 0.75);
      ("Physical Backup", "dumping blocks", "Dumping blocks", 11700.0, 0.12);
      ("Physical Restore", "restoring blocks", "Restoring blocks", 11160.0, 0.21);
    ]
  | 4 ->
    [
      ("Logical Backup", "mapping", "Mapping", 300.0, 0.90);
      ("Logical Backup", "dumping directories", "Directories", 420.0, 0.90);
      ("Logical Backup", "dumping files", "Files", 9000.0, 0.90);
      ("Logical Restore", "creating files", "Creating files", 2700.0, 0.53);
      ("Logical Restore", "filling in data", "Filling in data", 11700.0, 1.00);
      ("Physical Backup", "dumping blocks", "Dumping blocks", 6120.0, 0.30);
      ("Physical Restore", "restoring blocks", "Restoring blocks", 5868.0, 0.41);
    ]
  | _ -> []

let table45 ppf (b : Experiment.basic) =
  let tapes = b.Experiment.tapes in
  let no = if tapes = 2 then 4 else 5 in
  Format.fprintf ppf
    "Table %d: Parallel backup and restore performance on %d tape drives@." no tapes;
  hline ppf 110;
  Format.fprintf ppf "  %-32s | %10s %6s %9s %9s | %10s %6s@." "Stage" "elapsed"
    "CPU" "disk MB/s" "tape MB/s" "paper" "CPU";
  hline ppf 110;
  let rows = paper_parallel tapes in
  List.iter
    (fun (op : Experiment.operation) ->
      let mine =
        List.filter (fun (o, _, _, _, _) -> String.equal o op.Experiment.op_name) rows
      in
      if mine <> [] then begin
        Format.fprintf ppf "%s@." op.Experiment.op_name;
        List.iter
          (fun (_, our_label, paper_name, paper_s, paper_cpu) ->
            match find_stage op our_label with
            | Some s ->
              Format.fprintf ppf "  %-32s | %10s %6s %9.1f %9.1f | %10s %6s@."
                paper_name
                (dur (Pipeline.stage_elapsed s))
                (pct (Experiment.stage_cpu s))
                (Experiment.stage_rate_prefix s "disk:")
                (Experiment.stage_rate_prefix s "tape:")
                (dur paper_s) (pct paper_cpu)
            | None -> ())
          mine
      end)
    [
      b.Experiment.logical_backup;
      b.Experiment.logical_restore;
      b.Experiment.physical_backup;
      b.Experiment.physical_restore;
    ];
  hline ppf 110

(* ------------------------------------------------------------------ *)

let summary ppf (runs : Experiment.basic list) =
  Format.fprintf ppf "Scaling summary (paper 5.2/5.3)@.";
  hline ppf 100;
  Format.fprintf ppf "%-6s | %-16s %12s %12s | %-16s %12s %12s@." "tapes"
    "logical backup" "GB/h" "GB/h/tape" "physical backup" "GB/h" "GB/h/tape";
  hline ppf 100;
  List.iter
    (fun (b : Experiment.basic) ->
      let l = b.Experiment.logical_backup and p = b.Experiment.physical_backup in
      Format.fprintf ppf "%-6d | %-16s %12.1f %12.1f | %-16s %12.1f %12.1f@."
        b.Experiment.tapes
        (dur (Experiment.elapsed l))
        (Experiment.gb_h l)
        (Experiment.gb_h l /. Float.of_int b.Experiment.tapes)
        (dur (Experiment.elapsed p))
        (Experiment.gb_h p)
        (Experiment.gb_h p /. Float.of_int b.Experiment.tapes))
    runs;
  hline ppf 100;
  Format.fprintf ppf
    "  paper at 4 tapes: logical 69.6 GB/h (17.4 per tape), physical 110 GB/h (27.6 per tape)@.";
  match List.rev runs with
  | last :: _ when last.Experiment.tapes >= 4 ->
    Format.fprintf ppf
      "  measured at %d tapes: logical %.1f GB/h, physical %.1f GB/h (physical/logical %.2fx; paper 1.58x)@."
      last.Experiment.tapes
      (Experiment.gb_h last.Experiment.logical_backup)
      (Experiment.gb_h last.Experiment.physical_backup)
      (Experiment.gb_h last.Experiment.physical_backup
      /. Experiment.gb_h last.Experiment.logical_backup)
  | _ -> ()

let scaling_chart ppf (runs : Experiment.basic list) =
  (* ASCII per-tape throughput chart: flat bars = linear scaling. *)
  let max_rate =
    List.fold_left
      (fun acc b ->
        Float.max acc
          (Float.max
             (Experiment.gb_h b.Experiment.logical_backup)
             (Experiment.gb_h b.Experiment.physical_backup)))
      1.0 runs
  in
  let bar v = String.make (Float.to_int (40.0 *. v /. max_rate)) '#' in
  Format.fprintf ppf "Aggregate backup throughput vs tape drives (GB/h)@.";
  List.iter
    (fun (b : Experiment.basic) ->
      let l = Experiment.gb_h b.Experiment.logical_backup in
      let p = Experiment.gb_h b.Experiment.physical_backup in
      Format.fprintf ppf "  %d tape%s logical  %6.1f |%s@." b.Experiment.tapes
        (if b.Experiment.tapes = 1 then " " else "s") l (bar l);
      Format.fprintf ppf "  %d tape%s physical %6.1f |%s@." b.Experiment.tapes
        (if b.Experiment.tapes = 1 then " " else "s") p (bar p))
    runs

let faults ppf ?obs ~plane ~engine () =
  let module F = Repro_fault.Fault in
  let module Obs = Repro_obs.Obs in
  Format.fprintf ppf "Fault drill report@.";
  hline ppf 72;
  (* With an obs plane the counters come from the metrics registry the
     layers feed directly; otherwise fold the fault journal. Same truth,
     two carriers. *)
  let injected, repairs, retries, skips, media_repairs =
    match obs with
    | Some o ->
      ( Obs.counter_value o "fault.injected",
        Obs.counter_value o "fault.repairs",
        Obs.counter_value o "fault.retries",
        Obs.counter_value o "fault.skips",
        Obs.counter_value o "raid.media_repairs" )
    | None ->
      ( F.injected plane,
        F.repairs plane,
        F.retries plane,
        F.skips plane,
        Repro_block.Volume.media_repairs
          (Repro_wafl.Fs.volume (Engine.fs engine)) )
  in
  Format.fprintf ppf "  injected %d | repairs %d | retries %d | skips %d@."
    injected repairs retries skips;
  Format.fprintf ppf "  RAID media repairs (reconstruct + rewrite in place): %d@."
    media_repairs;
  let cat = Engine.catalog engine in
  List.iter
    (fun (e : Catalog.entry) ->
      if e.Catalog.degraded > 0 then
        Format.fprintf ppf
          "  degraded backup #%d (%a %S level %d): %d unreadable file%s skipped@."
          e.Catalog.id Strategy.pp e.Catalog.strategy e.Catalog.label e.Catalog.level
          e.Catalog.degraded
          (if e.Catalog.degraded = 1 then "" else "s"))
    (Catalog.entries cat);
  List.iter
    (fun (ck : Catalog.checkpoint) ->
      Format.fprintf ppf "  in-flight: %a %S level %d, %d/%d parts done (resumable)@."
        Strategy.pp ck.Catalog.ck_strategy ck.Catalog.ck_label ck.Catalog.ck_level
        (List.length ck.Catalog.ck_done)
        ck.Catalog.ck_parts)
    (Catalog.checkpoints cat);
  Format.fprintf ppf "  journal:@.";
  List.iter (fun l -> Format.fprintf ppf "    %s@." l) (F.journal_lines plane);
  hline ppf 72

let concurrent ppf (c : Experiment.concurrent) =
  Format.fprintf ppf "Concurrent volume dumps (paper 5.1)@.";
  hline ppf 80;
  Format.fprintf ppf "  home solo: %s    rlse solo: %s@."
    (dur (Experiment.elapsed c.Experiment.home_solo))
    (dur (Experiment.elapsed c.Experiment.rlse_solo));
  Format.fprintf ppf "  concurrent: home %s, rlse %s@."
    (dur c.Experiment.home_combined_elapsed)
    (dur c.Experiment.rlse_combined_elapsed);
  let slowdown =
    c.Experiment.home_combined_elapsed
    /. Float.max (Experiment.elapsed c.Experiment.home_solo) 1e-9
  in
  Format.fprintf ppf
    "  home slowdown when concurrent: %.3fx (paper: none — 'executed in exactly the same amount of time')@."
    slowdown;
  hline ppf 80

(* The trace-analysis verdict: which resource gated each phase, and the
   critical path the elapsed time flowed through. Rendered from an
   Analysis.report so `backupctl analyze` and tests share the bytes. *)
let bottleneck ppf (r : Analysis.report) =
  Format.fprintf ppf "Trace analysis@.";
  hline ppf 72;
  if r.Analysis.phases = [] then
    Format.fprintf ppf
      "  no scheduler timelines recorded (run under an armed obs plane)@.";
  List.iter
    (fun (p : Analysis.phase) ->
      Format.fprintf ppf "phase %s: %s (elapsed %.2f s)@." p.Analysis.p_name
        (String.uppercase_ascii (Analysis.verdict_to_string p.Analysis.p_verdict))
        p.Analysis.p_elapsed;
      Format.fprintf ppf "  %-10s %10s %10s@." "resource" "mean busy" "peak busy";
      List.iter
        (fun (u : Analysis.usage) ->
          Format.fprintf ppf "  %-10s %10.2f %10.2f@." u.Analysis.u_class
            u.Analysis.u_mean u.Analysis.u_peak)
        p.Analysis.p_usage;
      match p.Analysis.p_path with
      | None -> ()
      | Some cp ->
        let covered =
          List.fold_left
            (fun acc (s : Analysis.step) ->
              acc +. (s.Analysis.s_finish -. s.Analysis.s_start))
            0.0 cp.Analysis.cp_steps
        in
        Format.fprintf ppf "  critical path: %d part%s, %.0f%% of elapsed@."
          (List.length cp.Analysis.cp_steps)
          (if List.length cp.Analysis.cp_steps = 1 then "" else "s")
          (if p.Analysis.p_elapsed > 0.0 then
             100.0 *. covered /. p.Analysis.p_elapsed
           else 0.0);
        List.iter
          (fun (s : Analysis.step) ->
            let secs =
              List.filter_map
                (fun (cls, v) ->
                  if v > 0.0 then Some (Printf.sprintf "%s %.2f s" cls v)
                  else None)
                s.Analysis.s_seconds
            in
            Format.fprintf ppf "    part %d on drive %d: %8.2f .. %8.2f s  [%s]@."
              s.Analysis.s_part s.Analysis.s_drive s.Analysis.s_start
              s.Analysis.s_finish (String.concat ", " secs))
          cp.Analysis.cp_steps;
        Format.fprintf ppf "  critical-path resource seconds (%% of elapsed):@.";
        List.iter
          (fun ((cls, v), (_, pct)) ->
            if v > 0.0 then
              Format.fprintf ppf "    %-10s %10.2f s  (%.0f%%)@." cls v pct)
          (List.combine cp.Analysis.cp_seconds cp.Analysis.cp_pct))
    r.Analysis.phases;
  hline ppf 72
