(** Stage-level measurement.

    The experiment harness runs each backup stream's real code serially
    while snapshotting resource counters (CPU, disk array, tape drive)
    around every stage the dump/restore implementations announce through
    their [observe] hooks. The resulting per-stage demand vectors feed the
    fluid {!Repro_sim.Pipeline} solver, which overlaps them the way the
    pipelined filer would and yields the elapsed-time and utilization
    numbers of Tables 2–5. *)

val collect :
  resources:Repro_sim.Resource.t list ->
  ((string -> (unit -> unit) -> unit) -> 'a) ->
  'a * Repro_sim.Pipeline.stage list
(** [collect ~resources f] calls [f observe]; every [observe label work]
    executed inside becomes one {!Repro_sim.Pipeline.stage} whose demands
    are the busy-time and byte deltas each resource accumulated during
    [work]. Stages with no measurable demand are kept (zero-cost stages
    complete instantly in the solver). *)

val add_demand :
  Repro_sim.Pipeline.stage list ->
  stage:string ->
  Repro_sim.Pipeline.demand ->
  Repro_sim.Pipeline.stage list
(** Append a synthetic demand (e.g. per-operation serialization latency) to
    the named stage. *)

val scale_stages :
  Repro_sim.Pipeline.stage list -> float -> Repro_sim.Pipeline.stage list
(** Multiply every demand (work and bytes) — used to split one measured
    physical stream into [n] symmetric parallel streams. *)

val retarget :
  Repro_sim.Pipeline.stage list ->
  from_prefix:string ->
  to_resource:Repro_sim.Resource.t ->
  Repro_sim.Pipeline.stage list
(** Re-point demands whose resource name starts with [from_prefix] (e.g.
    ["tape:"]) at a different resource — gives each synthetic parallel
    stream its own tape drive. *)
