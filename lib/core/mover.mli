(** The data mover: tape streams over a network {!Repro_net.Session}.

    NDMP calls this role the {e mover}: the component that moves backup
    data between a data stream and a remote tape service. Here it bridges
    {!Repro_tape.Tapeio} and the simulated transport so the dump and
    image layers write byte-identical streams whether the stacker is
    cabled to the host or lives on a tape server across a link.

    Wire shape: each tape record travels as a 4-byte little-endian
    length followed by the record bytes; the end-of-stream filemark is
    the reserved length [0xFFFF_FFFF]. The receiving side reassembles
    records from whatever chunk sizes the MTU induces and replays them
    against the remote stacker with {!Repro_tape.Tapeio.library_backend},
    so cartridge spanning and filemarks behave exactly as locally. *)

type shipment
(** One stream's trip across the link. The transfer report appears when
    the stream closes (for a sink, when the dump layer seals it). *)

val xfer : shipment -> Repro_net.Session.xfer option
(** [None] until the stream has closed. *)

val remote_sink :
  ?record_bytes:int ->
  session:Repro_net.Session.t ->
  Repro_tape.Library.t ->
  shipment * Repro_tape.Tapeio.sink
(** A sink whose records are shipped over [session] and written to the
    tape server's stacker. Opens a data stream immediately; sealing the
    sink ships the filemark and closes the stream. May raise the
    fault-plane exceptions of {!Repro_net.Session.write} as well as
    [Tape.End_of_tape] surfaced from the far side. *)

val remote_source :
  ?skip_streams:int ->
  session:Repro_net.Session.t ->
  Repro_tape.Library.t ->
  shipment * Repro_tape.Tapeio.source
(** Read one stream of the tape server's stacker and ship it back: the
    three-way restore path (tape server to a host that is neither the
    backup host nor the server). The whole stream is transferred before
    the source yields its first byte — restore formats rewind-and-seek
    within a stream, which the wire cannot — so the shipment's transfer
    report is available immediately. *)
