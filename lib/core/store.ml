module Serde = Repro_util.Serde
module Persist = Repro_block.Persist
module Fs = Repro_wafl.Fs

let magic = "RSTORE1"

let save ~path engine =
  Fs.cp (Engine.fs engine);
  let w = Serde.writer ~initial_size:(1 lsl 20) () in
  Serde.write_fixed w magic;
  Persist.write w (Fs.volume (Engine.fs engine));
  Engine.save w engine;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Serde.contents w))

let load ?cpu ?costs ~path () =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = Serde.reader data in
  Serde.expect_magic r magic;
  let vol = Persist.read r in
  let config =
    match (cpu, costs) with
    | None, None -> Fs.default_config ()
    | _ ->
      {
        (Fs.default_config ()) with
        Fs.cpu;
        costs = (match costs with Some c -> c | None -> Repro_sim.Cost.f630);
      }
  in
  let fs = Fs.mount ~config vol in
  Engine.load ?cpu ?costs r ~fs
