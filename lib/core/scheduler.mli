(** Drive-pool scheduling of part streams on simulated time.

    The engine dumps (and restores) a multi-part job as independent part
    streams. This module runs those parts {e concurrently across a pool of
    tape drives} on the discrete-event engine: each job's real side effects
    (tape records, catalog updates) execute synchronously at admission time
    — so per-drive tape content is byte-identical to running the same parts
    serially on that drive — while its {e duration} is simulated from a
    demand vector shared with all in-flight parts under max-min fairness
    ({!Repro_sim.Pipeline.fair_share}). That split is what makes the
    differential "concurrency changed timing, not content" property hold by
    construction, and what reproduces the paper's Table 4/5 asymmetry: the
    parts of a logical dump all contend for the source disks, the parts of
    an image dump do not.

    The scheduler runs on its own {!Repro_sim.Engine} instance and never
    touches the caller's clock; elapsed simulated time is reported in
    {!stats}. *)

type demand = { key : string; work : float }
(** [work] seconds of service from the unit-capacity resource named [key]
    for the whole job. Keys follow the existing resource naming
    ("disk:<label>", "tape:<label>", "cpu"). *)

type 'a job = {
  label : string;
  pin : int option;
      (** [Some d]: only drive [d] may run this job (restores replay the
          part on the drive that wrote it). [None]: first free drive. *)
  execute : drive:int -> 'a * demand list;
      (** Performs the job's real work on [drive] and returns its result
          plus the demand vector governing its simulated duration.
          Executed exactly once, at admission. *)
}

type 'a completion = {
  value : 'a;
  drive : int;
  started : float;  (** simulated admission time *)
  finished : float;  (** simulated completion time *)
}

type 'a outcome =
  | Done of 'a completion
  | Failed of { error : exn; drive : int; at : float }
  | Skipped
      (** Never admitted: a fatal failure elsewhere aborted the run, or the
          job was pinned to a drive that died. *)

type stats = {
  elapsed : float;  (** simulated makespan of the whole run *)
  per_drive : (int * float * int) list;
      (** per drive: (index, busy seconds summed over its jobs, job count) *)
}

val run :
  ?fatal:(exn -> bool) ->
  ?max_active:int ->
  ?on_complete:(int -> 'a completion -> unit) ->
  ?on_interval:(t0:float -> t1:float -> (string * float) list -> unit) ->
  drives:int list ->
  'a job list ->
  'a outcome array * stats
(** Run [jobs] over the drive pool. The waiting queue is scanned in list
    order at every admission opportunity (t = 0 and each completion), so
    with one drive the jobs execute exactly in order — the classic serial
    engine. [max_active] caps in-flight jobs (default: pool size); each
    drive holds at most one job at a time.

    [on_complete i c] fires at [c.finished] in simulated-time order — the
    hook the engine uses for per-part checkpointing.

    [on_interval ~t0 ~t1 utils] fires once per inter-event interval of the
    schedule with each resource key's utilization over [[t0, t1)] — the
    service delivered per second at the solved fair-share rates, summed
    over the in-flight set (at most 1.0 per unit-capacity resource). The
    hook the engine uses to record utilization timelines
    ({!Repro_obs.Analysis.sampler}).

    Failure during [execute]: if [fatal e] (default: never) the drive is
    removed from the pool and the remaining queue drains on the survivors —
    a dead drive loses only its in-flight job. Any other exception aborts
    admissions; in-flight jobs still complete, the rest are [Skipped]. The
    run itself never raises; callers inspect the outcome array.

    Raises [Invalid_argument] on an empty or duplicated drive pool. *)
