(** Multi-resource scheduling of jobs on simulated time.

    The scheduler runs jobs {e concurrently over a pool of exclusive
    slots} on the discrete-event engine: each job's real side effects
    (tape records, catalog updates) execute synchronously at admission
    time — so per-drive tape content is byte-identical to running the
    same jobs serially — while its {e duration} is simulated from a
    demand vector shared with all in-flight jobs under max-min fairness
    ({!Repro_sim.Pipeline.fair_share}). That split is what makes the
    differential "concurrency changed timing, not content" property hold
    by construction, and what reproduces the paper's Table 4/5
    asymmetry: the parts of a logical dump all contend for the source
    disks, the parts of an image dump do not.

    Two layers share one core:

    - {!run_tasks} is the generalized fleet scheduler: tasks declare
      {e typed} resource requirements — claims on exclusive slots
      ({!Resource_id.t}: a drive slot, any drive of a library) plus a
      fluid demand vector (link shares, source-disk membership, tenant
      budgets) — and may carry a ready time (a backup window opening).
    - {!run} is the original drive pool, kept as a thin instantiation of
      {!run_tasks} over [Drive] slots; all its differential and
      byte-identity properties are preserved unchanged.

    The scheduler runs on its own {!Repro_sim.Engine} instance and never
    touches the caller's clock; elapsed simulated time is reported in
    {!stats} / {!pool_stats}. *)

module Resource_id = Repro_sim.Resource_id
(** Typed resource identifiers; see {!Repro_sim.Resource_id}. *)

type demand = { key : string; work : float }
(** [work] seconds of service from the unit-capacity resource named [key].
    Keys are the rendered form of {!Resource_id.t}; build them with
    {!demand} rather than formatting strings by hand. *)

val demand : Resource_id.t -> float -> demand
(** [demand rid work] is [{ key = Resource_id.to_key rid; work }]. *)

val demand_of_resource : Repro_sim.Resource.t -> float -> demand
(** A demand on a measured resource, keyed by its established name
    (already in {!Resource_id} key format). *)

(** {1 The generalized multi-resource scheduler} *)

type slot = Resource_id.t
(** An exclusive resource: held by at most one task at a time. *)

type claim =
  | Exactly of slot  (** this very slot (a restore replaying its drive) *)
  | One_of of slot list  (** any one slot of the set (a drive pool) *)

type 'a task = {
  t_label : string;
  t_ready : float;
      (** earliest admission time (schedule-local seconds): a backup
          window opening. [0.0] = immediately. *)
  t_claims : claim list;
      (** exclusive slots the task must hold, granted greedily in claim
          order, all-or-nothing *)
  t_run : now:float -> granted:slot list -> 'a * demand list;
      (** Performs the task's real work holding [granted] (one slot per
          claim, in claim order) and returns its result plus the fluid
          demand vector governing its simulated duration. Executed
          exactly once, at admission. *)
}

val task :
  ?ready:float ->
  label:string ->
  claims:claim list ->
  (now:float -> granted:slot list -> 'a * demand list) ->
  'a task

type 'a grant = {
  g_value : 'a;
  g_slots : slot list;  (** the slots held, in claim order *)
  g_started : float;  (** simulated admission time *)
  g_finished : float;  (** simulated completion time *)
}

type 'a task_outcome =
  | Completed of 'a grant
  | Errored of { error : exn; slots : slot list; at : float }
  | Unran
      (** Never admitted: a fatal failure elsewhere aborted the run, or
          every slot a claim could use died. *)

type pool_stats = {
  p_elapsed : float;  (** simulated makespan of the whole run *)
  p_slots : (slot * float * int) list;
      (** per slot, in pool order: busy seconds summed over its tasks,
          task count *)
}

val run_tasks :
  ?fatal:(exn -> bool) ->
  ?max_active:int ->
  ?on_complete:(int -> 'a grant -> unit) ->
  ?on_interval:(t0:float -> t1:float -> (string * float) list -> unit) ->
  slots:slot list ->
  'a task list ->
  'a task_outcome array * pool_stats
(** Run [tasks] over the slot pool. The waiting queue is scanned in list
    order at every admission opportunity (t = 0, each completion, and
    each distinct ready time) — so list order is priority order, and
    preemption happens at task boundaries: when a window opens, its task
    takes the next compatible free slot ahead of everything behind it in
    the queue. A task whose ready time has not arrived is skipped, not
    removed. [max_active] caps in-flight tasks (default: pool size).

    [on_complete i g] fires at [g.g_finished] in simulated-time order.
    [on_interval ~t0 ~t1 utils] fires once per inter-event interval with
    each resource key's utilization over [[t0, t1)] — the hook
    {!Repro_obs.Analysis.sampler} resamples into timelines.

    Failure during [t_run]: if [fatal e] every granted slot is removed
    from the pool and the remaining queue drains on the survivors — a
    dead slot loses only its in-flight task. Any other exception aborts
    admissions; in-flight tasks still complete, the rest are [Unran].
    The run itself never raises; callers inspect the outcome array.

    Raises [Invalid_argument] on an empty or duplicated slot pool. *)

(** {1 The drive pool}

    The original drive-pool interface, an instantiation of
    {!run_tasks} over [Resource_id.Drive] slots. *)

type 'a job = {
  label : string;
  pin : int option;
      (** [Some d]: only drive [d] may run this job (restores replay the
          part on the drive that wrote it). [None]: first free drive. *)
  execute : drive:int -> 'a * demand list;
      (** Performs the job's real work on [drive] and returns its result
          plus the demand vector governing its simulated duration.
          Executed exactly once, at admission. *)
}

type 'a completion = {
  value : 'a;
  drive : int;
  started : float;  (** simulated admission time *)
  finished : float;  (** simulated completion time *)
}

type 'a outcome =
  | Done of 'a completion
  | Failed of { error : exn; drive : int; at : float }
  | Skipped
      (** Never admitted: a fatal failure elsewhere aborted the run, or the
          job was pinned to a drive that died. *)

type stats = {
  elapsed : float;  (** simulated makespan of the whole run *)
  per_drive : (int * float * int) list;
      (** per drive: (index, busy seconds summed over its jobs, job count) *)
}

val run :
  ?fatal:(exn -> bool) ->
  ?max_active:int ->
  ?on_complete:(int -> 'a completion -> unit) ->
  ?on_interval:(t0:float -> t1:float -> (string * float) list -> unit) ->
  drives:int list ->
  'a job list ->
  'a outcome array * stats
(** Run [jobs] over the drive pool. The waiting queue is scanned in list
    order at every admission opportunity (t = 0 and each completion), so
    with one drive the jobs execute exactly in order — the classic serial
    engine. [max_active] caps in-flight jobs (default: pool size); each
    drive holds at most one job at a time.

    [on_complete i c] fires at [c.finished] in simulated-time order — the
    hook the engine uses for per-part checkpointing.

    [on_interval ~t0 ~t1 utils] fires once per inter-event interval of the
    schedule with each resource key's utilization over [[t0, t1)] — the
    service delivered per second at the solved fair-share rates, summed
    over the in-flight set (at most 1.0 per unit-capacity resource). The
    hook the engine uses to record utilization timelines
    ({!Repro_obs.Analysis.sampler}).

    Failure during [execute]: if [fatal e] (default: never) the drive is
    removed from the pool and the remaining queue drains on the survivors —
    a dead drive loses only its in-flight job. Any other exception aborts
    admissions; in-flight jobs still complete, the rest are [Skipped]. The
    run itself never raises; callers inspect the outcome array.

    Raises [Invalid_argument] on an empty or duplicated drive pool. *)
