(** Paper-vs-measured table rendering.

    One printer per table in the paper's evaluation. Paper columns are the
    published values (Table 2's throughput cells, lost in our source copy
    of the paper, are derived from Table 3's stage times over the 188 GB
    home volume). Measured columns come from an {!Experiment} run on a
    scaled-down volume — rates and ratios are the comparison, not absolute
    elapsed times. *)

val table1 : Format.formatter -> unit
(** The block-state truth table, checked against the implementation. *)

val table2 : Format.formatter -> Experiment.basic -> unit
val table3 : Format.formatter -> Experiment.basic -> unit

val table45 : Format.formatter -> Experiment.basic -> unit
(** Render Table 4 (run with [~tapes:2]) or Table 5 ([~tapes:4]). *)

val summary : Format.formatter -> Experiment.basic list -> unit
(** The §5.2/§5.3 scaling summary across tape counts. *)

val scaling_chart : Format.formatter -> Experiment.basic list -> unit
(** An ASCII bar chart of aggregate throughput vs tape count: the visual
    form of the paper's headline result. *)

val concurrent : Format.formatter -> Experiment.concurrent -> unit
(** The §5.1 concurrent-volumes claim. *)

val faults :
  Format.formatter ->
  ?obs:Repro_obs.Obs.t ->
  plane:Repro_fault.Fault.plane ->
  engine:Engine.t ->
  unit ->
  unit
(** After a fault drill: injected/repair/retry/skip counts, RAID media
    repairs, degraded catalog entries, resumable in-flight checkpoints,
    and the journal itself. With [obs] the counts are read from that
    plane's metrics registry ([fault.*], [raid.media_repairs]);
    otherwise they are folded from the fault journal. *)

val bottleneck : Format.formatter -> Repro_obs.Analysis.report -> unit
(** The trace-analysis verdict ([backupctl analyze]): per phase, the
    limiting resource class with its mean/peak busy fractions, and the
    critical path — which parts the elapsed time flowed through and the
    per-resource seconds along it. See [docs/OBSERVABILITY.md] §7. *)
