module Session = Repro_net.Session
module Tapeio = Repro_tape.Tapeio

type shipment = { mutable sh_xfer : Session.xfer option }

let xfer sh = sh.sh_xfer

(* Wire shape: u32-LE record length, record bytes; the reserved length
   below is the filemark. *)
let mark_len = 0xFFFF_FFFF

let len_prefix n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.unsafe_to_string b

let mark_prefix = len_prefix mark_len

(* Reassemble records from MTU-sized delivery chunks. [pending] holds at
   most one partial item (a record is bounded by the blocking factor), so
   the carry-over concatenation stays cheap. *)
type reassembly = { mutable pending : string }

let feed ps ~on_record ~on_mark chunk =
  let data = if ps.pending = "" then chunk else ps.pending ^ chunk in
  let n = String.length data in
  let pos = ref 0 in
  (try
     while n - !pos >= 4 do
       let len = Int32.to_int (String.get_int32_le data !pos) land mark_len in
       if len = mark_len then begin
         pos := !pos + 4;
         on_mark ()
       end
       else if n - !pos - 4 >= len then begin
         on_record (String.sub data (!pos + 4) len);
         pos := !pos + 4 + len
       end
       else raise Exit
     done
   with Exit -> ());
  ps.pending <- String.sub data !pos (n - !pos)

let remote_sink ?record_bytes ~session lib =
  let be = Tapeio.library_backend lib in
  let ps = { pending = "" } in
  let stream =
    Session.open_stream ~label:"mover.sink" session ~deliver:(fun chunk ->
        feed ps ~on_record:be.Tapeio.be_put ~on_mark:be.Tapeio.be_mark chunk)
  in
  let sh = { sh_xfer = None } in
  let wire =
    {
      Tapeio.be_put =
        (fun r ->
          Session.write stream (len_prefix (String.length r));
          Session.write stream r);
      be_mark =
        (fun () ->
          Session.write stream mark_prefix;
          sh.sh_xfer <- Some (Session.close_stream stream));
    }
  in
  (sh, Tapeio.sink_to ?record_bytes wire)

let remote_source ?skip_streams ~session lib =
  let next = Tapeio.records ?skip_streams lib in
  let recs = Queue.create () in
  let ps = { pending = "" } in
  let marked = ref false in
  let stream =
    Session.open_stream ~label:"mover.source" session ~deliver:(fun chunk ->
        feed ps chunk
          ~on_record:(fun r -> Queue.push r recs)
          ~on_mark:(fun () -> marked := true))
  in
  (* The server side reads the whole stream off tape and ships it; the
     transport pumps the simulation as the window opens and closes. *)
  let rec pump () =
    match next () with
    | Some r ->
      Session.write stream (len_prefix (String.length r));
      Session.write stream r;
      pump ()
    | None -> Session.write stream mark_prefix
  in
  pump ();
  let x = Session.close_stream stream in
  if not !marked then failwith "Mover.remote_source: truncated shipment";
  ({ sh_xfer = Some x }, Tapeio.source_of (fun () -> Queue.take_opt recs))
