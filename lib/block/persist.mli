(** Volume serialization.

    Writes a volume's geometry and non-zero data blocks into a
    {!Repro_util.Serde.writer} (sparse: zero blocks are skipped and
    reappear as zeros on load), and rebuilds an equivalent volume — parity
    recomputed by the RAID layer — on read. This is what lets the
    [backupctl] tool keep simulated filers in ordinary host files between
    invocations. *)

val write : Repro_util.Serde.writer -> Volume.t -> unit
val read : Repro_util.Serde.reader -> Volume.t
(** Raises [Serde.Corrupt] on malformed input. *)
