(** A simulated disk drive.

    Data is held in memory (lazily allocated 4 KB chunks). Each access is
    charged a service time from a classic two-parameter model: a positioning
    cost (average seek + rotational latency) whenever the access is not
    contiguous with the previous one, plus a media-transfer cost
    proportional to the bytes moved. This is the one property the paper's
    analysis rests on: sequential block streams run at device speed while
    inode-order file reads pay a seek per discontiguity.

    Service time is charged to an optional shared {!Repro_sim.Resource.t}
    (scaled by [service_scale], so a volume can normalize per-disk busy time
    into whole-array utilization) and to per-disk counters. *)

type params = {
  blocks : int;  (** capacity in 4 KB blocks *)
  seek_ms : float;
      (** positioning cost for a far discontiguous access; jumps of at most
          128 blocks pay a fixed 2.5 ms near-settle instead *)
  transfer_mb_s : float;  (** sustained media rate, decimal MB/s *)
}

val default_params : blocks:int -> params
(** 1998-era FC disk: 9 ms positioning, 10 MB/s media rate. *)

type t

val create :
  ?resource:Repro_sim.Resource.t -> ?service_scale:float -> label:string -> params -> t

val label : t -> string
val capacity : t -> int

val read : t -> int -> bytes
(** [read d dbn] returns a fresh copy of block [dbn] (all zeros if never
    written). Raises [Disk_failed] if the disk has {!fail}ed — a device
    fault the RAID layer handles — and [Invalid_argument] only on an
    out-of-range [dbn], which is a programmer error. An armed fault plane
    ({!Repro_fault.Fault}) may additionally raise
    [Repro_fault.Fault.Media_error] (latent sector error) or
    [Repro_fault.Fault.Transient] (timeout); a plane-scheduled drive death
    fails the disk and raises [Disk_failed]. *)

val write : t -> int -> bytes -> unit
(** Same failure contract as {!read}: [Disk_failed] on a failed drive,
    [Invalid_argument] on a bad address. A successful write clears any
    injected latent sector error at that address (the RAID repair
    path). *)

exception Disk_failed of string

val fail : t -> unit
(** Simulate a total drive failure: subsequent [read]/[write] raise
    [Disk_failed]. Used by the RAID reconstruction tests. *)

val failed : t -> bool

val revive : t -> unit
(** Bring a replacement drive online in the same slot, with all blocks
    zeroed (the RAID layer rebuilds contents). *)

(** {1 Accounting} *)

val busy_seconds : t -> float
val bytes_moved : t -> int
val reads : t -> int
val writes : t -> int
val seeks : t -> int
val reset_stats : t -> unit
