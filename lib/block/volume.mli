(** A volume: a flat 4 KB-block address space over one or more RAID-4
    groups, with whole-array service accounting.

    The paper's filer organizes 53 disks into two volumes ("home": 3 raid
    groups of 31 disks; "rlse": 2 groups of 22). A volume owns one
    {!Repro_sim.Resource.t}; each member disk charges its service time
    scaled by [1 / total_disks], so resource utilization reads as
    whole-array busy fraction. This matches the fluid pipeline model under
    dump-style read-ahead, which keeps all spindles busy when the workload
    allows (paper §3: NetApp's dump generates its own read-ahead policy). *)

type geometry = {
  groups : int;
  disks_per_group : int;  (** including one parity disk per group *)
  blocks_per_disk : int;
  disk : Disk.params;
}

val geometry :
  ?groups:int -> ?disks_per_group:int -> ?disk:Disk.params -> blocks_per_disk:int -> unit ->
  geometry
(** Defaults: 1 group, 8 disks per group, {!Disk.default_params}. *)

val small_geometry : data_blocks:int -> geometry
(** A convenient single-group geometry with at least [data_blocks] data
    blocks; used throughout the tests. *)

type t

val create : label:string -> geometry -> t
val geometry_of : t -> geometry
val label : t -> string
val size_blocks : t -> int
(** Number of data blocks (vbns). *)

val size_bytes : t -> int
val resource : t -> Repro_sim.Resource.t
val raid_groups : t -> Raid.t array

val read : t -> Block.addr -> bytes
val write : t -> Block.addr -> bytes -> unit

val read_extent : t -> Block.addr -> int -> bytes
(** [read_extent t vbn n] reads [n] consecutive blocks into one buffer. *)

val write_batch : t -> (Block.addr * bytes) list -> unit
(** Write a set of dirty blocks. Runs covering complete RAID stripes are
    written with {!Raid.write_stripe} (one I/O per disk, parity in one
    pass); stragglers fall back to read-modify-write. This is the payoff of
    write-anywhere allocation and the [write-allocation] ablation point. *)

val fail_disk : t -> group:int -> disk:int -> unit
val rebuild_disk : t -> group:int -> disk:int -> unit
val parity_consistent : t -> bool

(** {1 Accounting} *)

val busy_seconds : t -> float
(** Whole-array busy seconds (sum over disks divided by disk count). *)

val bytes_moved : t -> int
val seeks : t -> int

val media_repairs : t -> int
(** Blocks repaired from parity after media errors, summed over the RAID
    groups (see {!Raid.media_repairs}). *)

val reset_stats : t -> unit
