module Serde = Repro_util.Serde

let magic = "RVOL1"

let write w vol =
  let g = Volume.geometry_of vol in
  Serde.write_fixed w magic;
  Serde.write_string w (Volume.label vol);
  Serde.write_u16 w g.Volume.groups;
  Serde.write_u16 w g.Volume.disks_per_group;
  Serde.write_u32 w g.Volume.blocks_per_disk;
  Serde.write_u64 w (Int64.bits_of_float g.Volume.disk.Disk.seek_ms);
  Serde.write_u64 w (Int64.bits_of_float g.Volume.disk.Disk.transfer_mb_s);
  let nonzero = ref [] in
  let count = ref 0 in
  for vbn = 0 to Volume.size_blocks vol - 1 do
    let b = Volume.read vol vbn in
    if not (Block.is_zero b) then begin
      nonzero := (vbn, b) :: !nonzero;
      incr count
    end
  done;
  Serde.write_u32 w !count;
  List.iter
    (fun (vbn, b) ->
      Serde.write_u32 w vbn;
      Serde.write_bytes w b)
    (List.rev !nonzero)

let read r =
  Serde.expect_magic r magic;
  let label = Serde.read_string r in
  let groups = Serde.read_u16 r in
  let disks_per_group = Serde.read_u16 r in
  let blocks_per_disk = Serde.read_u32 r in
  let seek_ms = Int64.float_of_bits (Serde.read_u64 r) in
  let transfer_mb_s = Int64.float_of_bits (Serde.read_u64 r) in
  let disk = { Disk.blocks = blocks_per_disk; seek_ms; transfer_mb_s } in
  let vol =
    Volume.create ~label (Volume.geometry ~groups ~disks_per_group ~disk ~blocks_per_disk ())
  in
  let count = Serde.read_u32 r in
  let blocks =
    List.init count (fun _ ->
        let vbn = Serde.read_u32 r in
        let b = Bytes.of_string (Serde.read_fixed r Block.size) in
        (vbn, b))
  in
  Volume.write_batch vol blocks;
  Volume.reset_stats vol;
  vol
