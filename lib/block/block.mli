(** Block constants shared by the whole stack.

    WAFL is block based, using 4 KB blocks with no fragments (paper §2);
    every layer of this reproduction moves data in whole 4 KB blocks. *)

val size : int
(** 4096 bytes. *)

type addr = int
(** A volume block number (vbn). The volume presents a flat [0, nblocks)
    address space assembled from its RAID groups' data disks. *)

val zero : unit -> bytes
(** A fresh all-zero block. *)

val is_zero : bytes -> bool

val check : bytes -> unit
(** Raises [Invalid_argument] unless the buffer is exactly one block. *)

val blocks_for : int -> int
(** [blocks_for len] is the number of blocks needed to hold [len] bytes. *)
