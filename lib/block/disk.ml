type params = { blocks : int; seek_ms : float; transfer_mb_s : float }

let default_params ~blocks = { blocks; seek_ms = 9.0; transfer_mb_s = 10.0 }

exception Disk_failed of string

type t = {
  label : string;
  params : params;
  data : bytes option array;
  resource : Repro_sim.Resource.t option;
  service_scale : float;
  mutable is_failed : bool;
  mutable head : int; (* next contiguous block position; -1 = unknown *)
  mutable busy : float;
  mutable bytes : int;
  mutable reads : int;
  mutable writes : int;
  mutable seeks : int;
}

let create ?resource ?(service_scale = 1.0) ~label params =
  if params.blocks <= 0 then invalid_arg "Disk.create: no capacity";
  {
    label;
    params;
    data = Array.make params.blocks None;
    resource;
    service_scale;
    is_failed = false;
    head = -1;
    busy = 0.0;
    bytes = 0;
    reads = 0;
    writes = 0;
    seeks = 0;
  }

let label t = t.label
let capacity t = t.params.blocks

let check_access t dbn =
  if t.is_failed then raise (Disk_failed t.label);
  if dbn < 0 || dbn >= t.params.blocks then
    invalid_arg
      (Printf.sprintf "Disk %s: block %d out of range [0,%d)" t.label dbn t.params.blocks)

(* Positioning cost: nothing when the access continues the previous one, a
   short settle (track-to-track plus partial rotation) for a nearby jump,
   the full average seek otherwise. *)
let near_distance = 128
let near_ms = 2.5

let charge t ~op dbn nbytes =
  let distance = abs (dbn - t.head) in
  let position_ms =
    if t.head >= 0 && distance = 0 then 0.0
    else if t.head >= 0 && distance <= near_distance then near_ms
    else t.params.seek_ms
  in
  if position_ms > 0.0 then t.seeks <- t.seeks + 1;
  let service =
    (position_ms /. 1000.0)
    +. (Float.of_int nbytes /. (t.params.transfer_mb_s *. 1_000_000.0))
  in
  t.head <- dbn + 1;
  t.busy <- t.busy +. service;
  t.bytes <- t.bytes + nbytes;
  (* guard keeps the disabled plane to one load-and-branch per block *)
  if Repro_obs.Obs.enabled () then
    Repro_obs.Obs.io ~op ~device:t.label ~addr:dbn ~bytes:nbytes service;
  match t.resource with
  | Some r -> Repro_sim.Resource.charge r ~bytes:nbytes (service *. t.service_scale)
  | None -> ()

(* A plane-scheduled death surfaces exactly like an operator-called
   {!fail}: the disk enters its failed state and raises [Disk_failed], so
   RAID's degraded paths take over. *)
let hook t f =
  try f () with
  | Repro_fault.Fault.Drive_dead _ ->
    t.is_failed <- true;
    raise (Disk_failed t.label)

let read t dbn =
  check_access t dbn;
  hook t (fun () -> Repro_fault.Fault.on_disk_read ~device:t.label ~addr:dbn);
  t.reads <- t.reads + 1;
  charge t ~op:"disk.read" dbn Block.size;
  match t.data.(dbn) with Some b -> Bytes.copy b | None -> Block.zero ()

let write t dbn b =
  Block.check b;
  check_access t dbn;
  hook t (fun () -> Repro_fault.Fault.on_disk_write ~device:t.label ~addr:dbn);
  t.writes <- t.writes + 1;
  charge t ~op:"disk.write" dbn Block.size;
  t.data.(dbn) <- Some (Bytes.copy b)

let fail t = t.is_failed <- true
let failed t = t.is_failed

let revive t =
  t.is_failed <- false;
  t.head <- -1;
  Array.fill t.data 0 (Array.length t.data) None

let busy_seconds t = t.busy
let bytes_moved t = t.bytes
let reads t = t.reads
let writes t = t.writes
let seeks t = t.seeks

let reset_stats t =
  t.busy <- 0.0;
  t.bytes <- 0;
  t.reads <- 0;
  t.writes <- 0;
  t.seeks <- 0
