let size = 4096

type addr = int

let zero () = Bytes.make size '\000'

let is_zero b =
  let exception Nonzero in
  try
    Bytes.iter (fun c -> if c <> '\000' then raise Nonzero) b;
    true
  with Nonzero -> false

let check b =
  if Bytes.length b <> size then
    invalid_arg
      (Printf.sprintf "Block.check: buffer is %d bytes, want %d" (Bytes.length b) size)

let blocks_for len =
  if len < 0 then invalid_arg "Block.blocks_for";
  (len + size - 1) / size
