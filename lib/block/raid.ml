module Fault = Repro_fault.Fault
module Obs = Repro_obs.Obs

type t = {
  label : string;
  disks : Disk.t array;
  blocks_per_disk : int;
  mutable media_repairs : int;
}

let create ?resource ?(service_scale = 1.0) ~label ~ndisks ~blocks_per_disk params =
  if ndisks < 3 then invalid_arg "Raid.create: need at least 3 disks";
  if blocks_per_disk <= 0 then invalid_arg "Raid.create: empty disks";
  let params = { params with Disk.blocks = blocks_per_disk } in
  let disks =
    Array.init ndisks (fun i ->
        Disk.create ?resource ~service_scale
          ~label:(Printf.sprintf "%s.d%d" label i)
          params)
  in
  { label; disks; blocks_per_disk; media_repairs = 0 }

let label t = t.label
let ndisks t = Array.length t.disks
let data_disks t = ndisks t - 1
let data_blocks t = data_disks t * t.blocks_per_disk
let disks t = t.disks
let stripes t = t.blocks_per_disk
let parity_index t = ndisks t - 1

let stripe_of_gbn t gbn =
  if gbn < 0 || gbn >= data_blocks t then
    invalid_arg (Printf.sprintf "Raid %s: gbn %d out of range" t.label gbn);
  (gbn / data_disks t, gbn mod data_disks t)

let xor_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

(* Reconstruct disk [missing]'s block in [stripe] by xoring every other
   disk's block, parity included. *)
let reconstruct t ~missing stripe =
  let acc = Block.zero () in
  Array.iteri
    (fun i d -> if i <> missing then xor_into acc (Disk.read d stripe))
    t.disks;
  acc

(* Read one disk's block in [stripe] with single-fault recovery:
   - a drive that fails mid-I/O is served degraded, like a disk already
     known dead;
   - a media error (one unreadable sector) is REPAIRED: reconstruct the
     block from the surviving disks and rewrite it in place, which remaps
     the bad sector. A second fault during reconstruction propagates —
     that block is genuinely lost.
   Transient timeouts pass through untouched; retry is the engine's job. *)
let read_disk_repairing t di stripe =
  let disk = t.disks.(di) in
  match Disk.read disk stripe with
  | b -> b
  | exception Disk.Disk_failed _ -> reconstruct t ~missing:di stripe
  | exception Fault.Media_error { device; addr } ->
    Obs.with_span "raid.repair"
      ~attrs:[ ("device", Obs.Str device); ("addr", Obs.Int addr) ]
      (fun () ->
        let b =
          try reconstruct t ~missing:di stripe
          with Disk.Disk_failed _ ->
            (* double fault: a reconstruction source is missing too, so the
               block really is lost — surface it as the media error it is *)
            raise (Fault.Media_error { device; addr })
        in
        (try Disk.write disk stripe b
         with Disk.Disk_failed _ ->
           () (* died before the rewrite: serve degraded *));
        t.media_repairs <- t.media_repairs + 1;
        Obs.count "raid.media_repairs" 1;
        Fault.note_repair ~device ~addr;
        Bytes.copy b)

let media_repairs t = t.media_repairs

let read t gbn =
  let stripe, di = stripe_of_gbn t gbn in
  let disk = t.disks.(di) in
  if Disk.failed disk then reconstruct t ~missing:di stripe
  else read_disk_repairing t di stripe

let rec write t gbn b =
  Block.check b;
  let stripe, di = stripe_of_gbn t gbn in
  let data_disk = t.disks.(di) in
  let parity_disk = t.disks.(parity_index t) in
  match (Disk.failed data_disk, Disk.failed parity_disk) with
  | false, false -> (
    (* Read-modify-write: parity ^= old_data ^ new_data. A drive dying
       mid-RMW re-dispatches through the degraded cases; nothing has been
       written yet when the data write fails, and a lost parity write lands
       in the same state as the parity-dead case. *)
    try
      let old_data = read_disk_repairing t di stripe in
      let parity = read_disk_repairing t (parity_index t) stripe in
      xor_into parity old_data;
      xor_into parity b;
      Disk.write data_disk stripe b;
      Disk.write parity_disk stripe parity
    with Disk.Disk_failed _ -> write t gbn b)
  | true, false ->
    (* Degraded write: fold the new data into parity computed from the
       surviving data disks. *)
    let parity = Bytes.copy b in
    for i = 0 to data_disks t - 1 do
      if i <> di then xor_into parity (Disk.read t.disks.(i) stripe)
    done;
    Disk.write parity_disk stripe parity
  | false, true -> Disk.write data_disk stripe b
  | true, true -> raise (Disk.Disk_failed t.label)

let write_stripe t stripe data =
  if Array.length data <> data_disks t then
    invalid_arg "Raid.write_stripe: wrong data width";
  if stripe < 0 || stripe >= stripes t then invalid_arg "Raid.write_stripe: bad stripe";
  Array.iter Block.check data;
  let parity = Block.zero () in
  Array.iter (fun b -> xor_into parity b) data;
  Array.iteri
    (fun i b -> if not (Disk.failed t.disks.(i)) then Disk.write t.disks.(i) stripe b)
    data;
  let pd = t.disks.(parity_index t) in
  if not (Disk.failed pd) then Disk.write pd stripe parity

let fail_disk t i = Disk.fail t.disks.(i)

let rebuild_disk t i =
  Disk.revive t.disks.(i);
  for stripe = 0 to stripes t - 1 do
    let b = reconstruct t ~missing:i stripe in
    Disk.write t.disks.(i) stripe b
  done

let parity_consistent t =
  let ok = ref true in
  for stripe = 0 to stripes t - 1 do
    let acc = Block.zero () in
    Array.iter (fun d -> xor_into acc (Disk.read d stripe)) t.disks;
    if not (Block.is_zero acc) then ok := false
  done;
  !ok
