type geometry = {
  groups : int;
  disks_per_group : int;
  blocks_per_disk : int;
  disk : Disk.params;
}

let geometry ?(groups = 1) ?(disks_per_group = 8) ?disk ~blocks_per_disk () =
  let disk =
    match disk with Some d -> d | None -> Disk.default_params ~blocks:blocks_per_disk
  in
  if groups <= 0 || disks_per_group < 3 || blocks_per_disk <= 0 then
    invalid_arg "Volume.geometry";
  { groups; disks_per_group; blocks_per_disk; disk }

let small_geometry ~data_blocks =
  let disks_per_group = 8 in
  let data = disks_per_group - 1 in
  let blocks_per_disk = (data_blocks + data - 1) / data in
  geometry ~groups:1 ~disks_per_group ~blocks_per_disk ()

type t = {
  label : string;
  geom : geometry;
  rgroups : Raid.t array;
  group_data : int; (* data blocks per group *)
  resource : Repro_sim.Resource.t;
}

let create ~label g =
  let resource = Repro_sim.Resource.create (Printf.sprintf "disk:%s" label) in
  let total_disks = g.groups * g.disks_per_group in
  let service_scale = 1.0 /. Float.of_int total_disks in
  let groups =
    Array.init g.groups (fun i ->
        Raid.create ~resource ~service_scale
          ~label:(Printf.sprintf "%s.rg%d" label i)
          ~ndisks:g.disks_per_group ~blocks_per_disk:g.blocks_per_disk g.disk)
  in
  { label; geom = g; rgroups = groups;
    group_data = (g.disks_per_group - 1) * g.blocks_per_disk; resource }

let geometry_of t = t.geom
let label t = t.label
let size_blocks t = Array.length t.rgroups * t.group_data
let size_bytes t = size_blocks t * Block.size
let resource t = t.resource
let raid_groups t = t.rgroups

let locate t vbn =
  if vbn < 0 || vbn >= size_blocks t then
    invalid_arg (Printf.sprintf "Volume %s: vbn %d out of range [0,%d)" t.label vbn
                   (size_blocks t));
  (t.rgroups.(vbn / t.group_data), vbn mod t.group_data)

let read t vbn =
  let g, gbn = locate t vbn in
  Raid.read g gbn

let write t vbn b =
  let g, gbn = locate t vbn in
  Raid.write g gbn b

let read_extent t vbn n =
  if n <= 0 then invalid_arg "Volume.read_extent";
  let buf = Bytes.create (n * Block.size) in
  for i = 0 to n - 1 do
    Bytes.blit (read t (vbn + i)) 0 buf (i * Block.size) Block.size
  done;
  buf

(* Group sorted (vbn, block) pairs into maximal runs of consecutive vbns,
   then write any run segment that covers a whole RAID stripe with one
   write_stripe call. *)
let write_batch t blocks =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) blocks in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n do
    let start_vbn, _ = arr.(!i) in
    let g, start_gbn = locate t start_vbn in
    let width = Raid.data_disks g in
    (* Length of the consecutive run starting at !i that stays in group g. *)
    let run_len = ref 1 in
    let continue = ref true in
    while !continue && !i + !run_len < n do
      let vbn, _ = arr.(!i + !run_len) in
      let g', _ = if vbn < size_blocks t then locate t vbn else (g, 0) in
      if vbn = start_vbn + !run_len && g' == g then incr run_len else continue := false
    done;
    (* Emit the run: full stripes via write_stripe, edges one by one. *)
    let emitted = ref 0 in
    while !emitted < !run_len do
      let gbn = start_gbn + !emitted in
      let left = !run_len - !emitted in
      if gbn mod width = 0 && left >= width then begin
        let stripe = gbn / width in
        let data = Array.init width (fun k -> snd arr.(!i + !emitted + k)) in
        Raid.write_stripe g stripe data;
        emitted := !emitted + width
      end
      else begin
        Raid.write g gbn (snd arr.(!i + !emitted));
        incr emitted
      end
    done;
    i := !i + !run_len
  done

let fail_disk t ~group ~disk = Raid.fail_disk t.rgroups.(group) disk
let rebuild_disk t ~group ~disk = Raid.rebuild_disk t.rgroups.(group) disk

let parity_consistent t =
  Array.for_all (fun g -> Raid.parity_consistent g) t.rgroups

let fold_disks f init t =
  Array.fold_left
    (fun acc g -> Array.fold_left f acc (Raid.disks g))
    init t.rgroups

let total_disks t =
  Array.fold_left (fun acc g -> acc + Raid.ndisks g) 0 t.rgroups

let busy_seconds t =
  fold_disks (fun acc d -> acc +. Disk.busy_seconds d) 0.0 t
  /. Float.of_int (total_disks t)

let bytes_moved t = fold_disks (fun acc d -> acc + Disk.bytes_moved d) 0 t
let seeks t = fold_disks (fun acc d -> acc + Disk.seeks d) 0 t

let media_repairs t =
  Array.fold_left (fun acc g -> acc + Raid.media_repairs g) 0 t.rgroups

let reset_stats t =
  fold_disks
    (fun () d ->
      Disk.reset_stats d;
      ())
    () t
