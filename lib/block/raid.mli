(** A RAID-4 group: [n-1] data disks plus one dedicated parity disk, striped
    one block deep.

    WAFL sits on software RAID-4; image dump/restore reads and writes
    "directly through the internal software RAID subsystem" (paper §4.1).
    The group exposes a flat data-block space; parity is maintained either
    by read-modify-write on single-block writes or in one pass by
    {!write_stripe}, which is what WAFL's write-anywhere allocator exists to
    enable (it is also one of the ablations in DESIGN.md §5).

    Addressing: group block number [gbn] maps to stripe [gbn / (n-1)] on
    data disk [gbn mod (n-1)], so consecutive gbns round-robin across data
    disks and advance sequentially on each. *)

type t

val create :
  ?resource:Repro_sim.Resource.t ->
  ?service_scale:float ->
  label:string ->
  ndisks:int ->
  blocks_per_disk:int ->
  Disk.params ->
  t
(** [ndisks] includes the parity disk; at least 3. [Disk.params.blocks] is
    overridden by [blocks_per_disk]. *)

val label : t -> string
val data_blocks : t -> int
val ndisks : t -> int
val data_disks : t -> int
val disks : t -> Disk.t array
(** Index [ndisks - 1] is the parity disk. *)

val read : t -> int -> bytes
(** Reads via parity reconstruction if the data disk has failed. A
    single-block media error ([Repro_fault.Fault.Media_error]) is repaired
    in place: the block is reconstructed from parity, rewritten to the disk
    (remapping the bad sector), counted in {!media_repairs}, and served.
    Raises [Disk.Disk_failed] if two disks are down, and [Media_error]
    itself only on a double fault (a media error with another disk already
    missing). *)

val write : t -> int -> bytes -> unit
(** Read-modify-write parity update (up to 4 disk I/Os). Media errors on
    the pre-read are repaired as in {!read}; a drive dying mid-operation
    falls back to the degraded write path. *)

val media_repairs : t -> int
(** Blocks repaired from parity after a media error. *)

val write_stripe : t -> int -> bytes array -> unit
(** [write_stripe t stripe data] writes all [n-1] data blocks of a stripe
    and its parity in [n] disk I/Os. [Array.length data] must be [n-1]. *)

val stripes : t -> int
val stripe_of_gbn : t -> int -> int * int
(** [(stripe, data_disk_index)]. *)

val fail_disk : t -> int -> unit
val rebuild_disk : t -> int -> unit
(** Revive disk [i] and reconstruct its contents from the others. *)

val parity_consistent : t -> bool
(** Full scrub: every stripe's parity equals the xor of its data blocks. *)
