module Fs = Repro_wafl.Fs
module Inode = Repro_wafl.Inode

let chunk = 64 * 1024

let trees ?(check_times = false) ~src:(sfs, sroot) ~dst:(dfs, droot) () =
  let diffs = ref [] in
  let count = ref 0 in
  let note fmt =
    Printf.ksprintf
      (fun s ->
        incr count;
        if !count <= 50 then diffs := s :: !diffs)
      fmt
  in
  let join base name = if base = "/" then "/" ^ name else base ^ "/" ^ name in
  (* Hard-link identity: paths sharing an inode in the source must share
     one in the destination. *)
  let src_seen : (int, string * int) Hashtbl.t = Hashtbl.create 32 in
  let check_links srel drel rel =
    match (Fs.lookup sfs srel, Fs.lookup dfs drel) with
    | Some sino, Some dino -> (
      match Hashtbl.find_opt src_seen sino with
      | Some (first_rel, first_dino) ->
        if dino <> first_dino then
          note "%s: should be a hard link of %s but is a separate file" rel first_rel
      | None -> Hashtbl.replace src_seen sino (rel, dino))
    | _ -> ()
  in
  let rec walk srel drel rel =
    let sattr = Fs.getattr sfs srel in
    let dattr = Fs.getattr dfs drel in
    if sattr.Inode.kind <> dattr.Inode.kind then note "%s: kind differs" rel
    else begin
      if sattr.Inode.perms <> dattr.Inode.perms then
        note "%s: perms %o vs %o" rel sattr.Inode.perms dattr.Inode.perms;
      if sattr.Inode.uid <> dattr.Inode.uid || sattr.Inode.gid <> dattr.Inode.gid then
        note "%s: owner %d:%d vs %d:%d" rel sattr.Inode.uid sattr.Inode.gid
          dattr.Inode.uid dattr.Inode.gid;
      if sattr.Inode.dos_flags <> dattr.Inode.dos_flags then
        note "%s: dos flags %x vs %x" rel sattr.Inode.dos_flags dattr.Inode.dos_flags;
      if check_times && not (Float.equal sattr.Inode.mtime dattr.Inode.mtime) then
        note "%s: mtime %g vs %g" rel sattr.Inode.mtime dattr.Inode.mtime;
      let sx = List.sort compare (Fs.xattrs sfs srel) in
      let dx = List.sort compare (Fs.xattrs dfs drel) in
      if sx <> dx then note "%s: xattrs differ" rel;
      match sattr.Inode.kind with
      | Inode.Regular ->
        check_links srel drel rel;
        if sattr.Inode.size <> dattr.Inode.size then
          note "%s: size %d vs %d" rel sattr.Inode.size dattr.Inode.size
        else begin
          let size = sattr.Inode.size in
          let pos = ref 0 in
          let equal = ref true in
          while !equal && !pos < size do
            let len = Stdlib.min chunk (size - !pos) in
            let a = Fs.read sfs srel ~offset:!pos ~len in
            let b = Fs.read dfs drel ~offset:!pos ~len in
            if not (String.equal a b) then begin
              equal := false;
              note "%s: content differs near offset %d" rel !pos
            end;
            pos := !pos + len
          done
        end
      | Inode.Symlink ->
        if not (String.equal (Fs.readlink sfs srel) (Fs.readlink dfs drel)) then
          note "%s: symlink target differs" rel
      | Inode.Directory ->
        let snames = List.sort compare (List.map fst (Fs.readdir sfs srel)) in
        let dnames = List.sort compare (List.map fst (Fs.readdir dfs drel)) in
        List.iter
          (fun n -> if not (List.mem n dnames) then note "%s: missing %s" rel n)
          snames;
        List.iter
          (fun n -> if not (List.mem n snames) then note "%s: extra %s" rel n)
          dnames;
        List.iter
          (fun n ->
            if List.mem n dnames then walk (join srel n) (join drel n) (join rel n))
          snames
      | Inode.Free -> note "%s: free inode" rel
    end
  in
  walk sroot droot "/";
  match !diffs with
  | [] -> Ok ()
  | l ->
    let l = List.rev l in
    let l = if !count > 50 then l @ [ Printf.sprintf "... and %d more" (!count - 50) ] else l in
    Error l
