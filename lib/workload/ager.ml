module Prng = Repro_util.Prng
module Fs = Repro_wafl.Fs
module Inode = Repro_wafl.Inode

type churn = {
  seed : int;
  rounds : int;
  batch : int;
  delete_weight : int;
  create_weight : int;
  overwrite_weight : int;
  append_weight : int;
  rename_weight : int;
}

let default_churn =
  {
    seed = 99;
    rounds = 20;
    batch = 50;
    delete_weight = 3;
    create_weight = 3;
    overwrite_weight = 2;
    append_weight = 1;
    rename_weight = 1;
  }

type stats = {
  deletes : int;
  creates : int;
  overwrites : int;
  appends : int;
  renames : int;
}

type op = Delete | Create | Overwrite | Append | Rename

let pick_op rng c =
  let total =
    c.delete_weight + c.create_weight + c.overwrite_weight + c.append_weight
    + c.rename_weight
  in
  let n = Prng.int rng total in
  if n < c.delete_weight then Delete
  else if n < c.delete_weight + c.create_weight then Create
  else if n < c.delete_weight + c.create_weight + c.overwrite_weight then Overwrite
  else if n < c.delete_weight + c.create_weight + c.overwrite_weight + c.append_weight
  then Append
  else Rename

let age ?(churn = default_churn) ~fs ~root () =
  let c = churn in
  let rng = Prng.create c.seed in
  let files = ref (Array.of_list (Generator.file_paths fs root)) in
  let created = ref 0 in
  let stats = ref { deletes = 0; creates = 0; overwrites = 0; appends = 0; renames = 0 } in
  let random_file () =
    if Array.length !files = 0 then None else Some (Prng.choose rng !files)
  in
  let remove_from_list path =
    files := Array.of_list (List.filter (fun p -> p <> path) (Array.to_list !files))
  in
  let add_to_list path = files := Array.append !files [| path |] in
  let payload n = String.init n (fun _ -> Char.chr (Prng.int rng 256)) in
  for _round = 1 to c.rounds do
    for _op = 1 to c.batch do
      match pick_op rng c with
      | Delete -> (
        match random_file () with
        | Some path when Array.length !files > 4 ->
          Fs.unlink fs path;
          remove_from_list path;
          stats := { !stats with deletes = !stats.deletes + 1 }
        | Some _ | None -> ())
      | Create ->
        let dir =
          match random_file () with
          | Some f -> Filename.dirname f
          | None -> root
        in
        let path = Printf.sprintf "%s/aged%05d.dat" dir !created in
        incr created;
        if Fs.lookup fs path = None then begin
          ignore (Fs.create fs path ~perms:0o644);
          Fs.write fs path ~offset:0 (payload (Prng.int_in rng 500 60_000));
          add_to_list path;
          stats := { !stats with creates = !stats.creates + 1 }
        end
      | Overwrite -> (
        match random_file () with
        | Some path ->
          let size = (Fs.getattr fs path).Inode.size in
          let len = Stdlib.min size 16_384 in
          if len > 0 then begin
            Fs.write fs path ~offset:(Prng.int rng (Stdlib.max 1 (size - len)))
              (payload len);
            stats := { !stats with overwrites = !stats.overwrites + 1 }
          end
        | None -> ())
      | Append -> (
        match random_file () with
        | Some path ->
          let size = (Fs.getattr fs path).Inode.size in
          Fs.write fs path ~offset:size (payload (Prng.int_in rng 100 20_000));
          stats := { !stats with appends = !stats.appends + 1 }
        | None -> ())
      | Rename -> (
        match random_file () with
        | Some path ->
          let dst = Filename.dirname path ^ Printf.sprintf "/ren%05d.dat" !created in
          incr created;
          if Fs.lookup fs dst = None then begin
            Fs.rename fs path dst;
            remove_from_list path;
            add_to_list dst;
            stats := { !stats with renames = !stats.renames + 1 }
          end
        | None -> ())
    done;
    (* End each round at a consistency point, so the next round's writes
       are forced into whatever free space the churn left behind. *)
    Fs.cp fs
  done;
  !stats

let fragmentation fs root =
  let view = Fs.active_view fs in
  let pairs = ref 0 in
  let broken = ref 0 in
  List.iter
    (fun path ->
      match Fs.View.lookup view path with
      | None -> ()
      | Some ino ->
        let attr = Fs.View.getattr view ino in
        let n = Inode.nblocks attr in
        let prev = ref None in
        for lbn = 0 to n - 1 do
          match Fs.View.block_address view ino lbn with
          | Some vbn ->
            (match !prev with
            | Some p ->
              incr pairs;
              if vbn <> p + 1 then incr broken
            | None -> ());
            prev := Some vbn
          | None -> prev := None
        done)
    (Generator.file_paths fs root);
  if !pairs = 0 then 0.0 else Float.of_int !broken /. Float.of_int !pairs
