(** Synthetic file-system population.

    Stands in for the paper's real engineering-department volumes: a
    directory tree with configurable fan-out and log-normally distributed
    file sizes (the classic long-tailed shape of real file systems — most
    files small, most bytes in large files). Fully deterministic per
    seed. *)

type profile = {
  seed : int;
  median_file_bytes : float;  (** log-normal median *)
  sigma : float;  (** log-normal shape; 1.2–1.8 is realistic *)
  files_per_dir : int;
  dirs_per_dir : int;
  max_depth : int;
  xattr_fraction : float;  (** fraction of files given DOS/ACL attributes *)
}

val default : profile
(** seed 1, 8 KB median, sigma 1.4, 12 files and 3 subdirs per directory,
    depth 4, 10% of files carrying multi-protocol attributes. *)

type stats = { files : int; dirs : int; bytes : int }

val populate :
  ?profile:profile -> fs:Repro_wafl.Fs.t -> root:string -> total_bytes:int -> unit -> stats
(** Create directories and files under [root] (created if missing) until at
    least [total_bytes] of file data exist. Takes a consistency point at
    the end. *)

val file_paths : Repro_wafl.Fs.t -> string -> string list
(** All regular-file paths under a directory, depth-first, sorted. *)
