(** File-system aging.

    "A mature data set is typically slower to backup than a newly created
    one because of fragmentation: the blocks of a newly created file are
    less likely to be contiguously allocated in a mature file system where
    the free space is scattered throughout the disks" (paper §5.1,
    footnote 1). The ager reproduces that state honestly: rounds of
    deletes, creates, overwrites, appends and renames with consistency
    points in between, so the write-anywhere allocator scatters live data
    exactly the way years of use would. *)

type churn = {
  seed : int;
  rounds : int;  (** each round touches a batch of files then takes a CP *)
  batch : int;  (** operations per round *)
  delete_weight : int;
  create_weight : int;
  overwrite_weight : int;
  append_weight : int;
  rename_weight : int;
}

val default_churn : churn
(** 20 rounds of 50 operations, weights 3/3/2/1/1. *)

type stats = {
  deletes : int;
  creates : int;
  overwrites : int;
  appends : int;
  renames : int;
}

val age : ?churn:churn -> fs:Repro_wafl.Fs.t -> root:string -> unit -> stats

val fragmentation : Repro_wafl.Fs.t -> string -> float
(** Fraction of logically-consecutive file block pairs that are {e not}
    physically consecutive on the volume, averaged over all files under
    the root: 0 = perfectly laid out, 1 = fully scattered. *)
