module Prng = Repro_util.Prng
module Fs = Repro_wafl.Fs
module Inode = Repro_wafl.Inode

type profile = {
  seed : int;
  median_file_bytes : float;
  sigma : float;
  files_per_dir : int;
  dirs_per_dir : int;
  max_depth : int;
  xattr_fraction : float;
}

let default =
  {
    seed = 1;
    median_file_bytes = 8192.0;
    sigma = 1.4;
    files_per_dir = 12;
    dirs_per_dir = 3;
    max_depth = 4;
    xattr_fraction = 0.1;
  }

type stats = { files : int; dirs : int; bytes : int }

(* Deterministic, cheap file content: a seeded 4 KB tile repeated with a
   varying 16-byte stamp per block, so content differs per block but is
   fast to produce and somewhat compressible, like real data. *)
let content rng size =
  let tile = Bytes.create 4096 in
  for i = 0 to 4095 do
    Bytes.set tile i (Char.chr (Prng.int rng 256))
  done;
  let b = Bytes.create size in
  let pos = ref 0 in
  let blk = ref 0 in
  while !pos < size do
    let n = Stdlib.min 4096 (size - !pos) in
    Bytes.blit tile 0 b !pos n;
    if n >= 16 then begin
      Bytes.set_int64_le b !pos (Int64.of_int !blk);
      Bytes.set_int64_le b (!pos + 8) (Prng.int64 rng)
    end;
    incr blk;
    pos := !pos + n
  done;
  Bytes.to_string b

let sample_size rng p =
  let mu = Float.log p.median_file_bytes in
  let s = Prng.lognormal rng ~mu ~sigma:p.sigma in
  Stdlib.max 1 (Stdlib.min (Float.to_int s) (32 * 1024 * 1024))

let dos_name_of name =
  let upper = String.uppercase_ascii name in
  let base = String.concat "" (String.split_on_char '.' upper) in
  let short = String.sub base 0 (Stdlib.min 6 (String.length base)) in
  short ^ "~1.DAT"

let populate ?(profile = default) ~fs ~root ~total_bytes () =
  let p = profile in
  let rng = Prng.create p.seed in
  if Fs.lookup fs root = None then ignore (Fs.mkdir fs root ~perms:0o755);
  (* Build the directory skeleton first. *)
  let dirs = ref [ root ] in
  let ndirs = ref 0 in
  let rec grow base depth =
    if depth < p.max_depth then
      for d = 0 to p.dirs_per_dir - 1 do
        let path = Printf.sprintf "%s/d%d_%d" base depth d in
        (match Fs.lookup fs path with
        | None ->
          ignore (Fs.mkdir fs path ~perms:0o755);
          incr ndirs
        | Some _ -> ());
        dirs := path :: !dirs;
        (* Taper: not every directory has the full set of children. *)
        if Prng.float rng 1.0 < 0.8 then grow path (depth + 1)
      done
  in
  grow root 0;
  let dir_array = Array.of_list !dirs in
  let files = ref 0 in
  let bytes = ref 0 in
  while !bytes < total_bytes do
    let dir = Prng.choose rng dir_array in
    let path = Printf.sprintf "%s/f%06d.dat" dir !files in
    if Fs.lookup fs path = None then begin
      ignore (Fs.create fs path ~perms:(Prng.choose rng [| 0o644; 0o600; 0o755 |]));
      Fs.set_owner fs path ~uid:(1000 + Prng.int rng 8) ~gid:(100 + Prng.int rng 3);
      let size = sample_size rng p in
      Fs.write fs path ~offset:0 (content rng size);
      if Prng.float rng 1.0 < p.xattr_fraction then begin
        Fs.set_xattr fs path ~name:"dos.name" ~value:(dos_name_of (Filename.basename path));
        Fs.set_dos_flags fs path ~flags:(Prng.int rng 0x40);
        if Prng.float rng 1.0 < 0.5 then
          Fs.set_xattr fs path ~name:"nt.acl" ~value:"D:(A;;FA;;;BA)(A;;FR;;;WD)"
      end;
      (* an occasional second name: real trees have hard links *)
      if Prng.float rng 1.0 < 0.03 then begin
        let ldir = Prng.choose rng dir_array in
        let lpath = Printf.sprintf "%s/l%06d.lnk" ldir !files in
        if Fs.lookup fs lpath = None then Fs.link fs path lpath
      end;
      (* ...and symbolic links *)
      if Prng.float rng 1.0 < 0.02 then begin
        let sdir = Prng.choose rng dir_array in
        let spath = Printf.sprintf "%s/s%06d.sym" sdir !files in
        if Fs.lookup fs spath = None then Fs.symlink fs ~target:path spath
      end;
      bytes := !bytes + size;
      incr files
    end
    else incr files
  done;
  Fs.cp fs;
  { files = !files; dirs = !ndirs; bytes = !bytes }

let file_paths fs root =
  let acc = ref [] in
  let rec walk path =
    List.iter
      (fun (name, _) ->
        let child = if path = "/" then "/" ^ name else path ^ "/" ^ name in
        match (Fs.getattr fs child).Inode.kind with
        | Inode.Directory -> walk child
        | Inode.Regular -> acc := child :: !acc
        | Inode.Symlink | Inode.Free -> ())
      (Fs.readdir fs path)
  in
  walk root;
  List.sort String.compare !acc
