(** Deep tree comparison: the oracle for backup/restore round-trip tests.

    Two trees are equal when they agree on structure (names, kinds), file
    sizes and contents, permissions, DOS flags, quota-tree membership is
    ignored (restore does not carry it), and extended attributes.
    Modification times are compared only when [check_times] is set. *)

val trees :
  ?check_times:bool ->
  src:Repro_wafl.Fs.t * string ->
  dst:Repro_wafl.Fs.t * string ->
  unit ->
  (unit, string list) result
(** [Ok ()] or the list of differences (capped at 50). *)
