(* Regenerate every table in the paper's evaluation (section 5).

   Usage: tables [--quick] [--data-mib N] [--skip-parallel] *)

module Experiment = Repro_backup.Experiment
module Report = Repro_backup.Report

open Cmdliner

let run quick data_mib skip_parallel =
  let base = if quick then Experiment.quick_config () else Experiment.default_config () in
  let cfg =
    match data_mib with
    | Some mib -> { base with Experiment.data_bytes = mib * 1024 * 1024 }
    | None -> base
  in
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "Logical vs. Physical File System Backup (OSDI '99) — reproduction@.";
  Format.fprintf ppf
    "volume: %d MiB data, %d raid groups x %d disks, %s@.@."
    (cfg.Experiment.data_bytes / 1024 / 1024)
    cfg.Experiment.groups cfg.Experiment.disks_per_group
    (if cfg.Experiment.aged then "aged (mature)" else "fresh");
  Report.table1 ppf;
  Format.fprintf ppf "@.";
  Format.fprintf ppf "[running basic experiment, 1 tape drive...]@.%!";
  let basic = Experiment.run_basic ~tapes:1 cfg in
  Report.table2 ppf basic;
  Format.fprintf ppf "@.";
  Report.table3 ppf basic;
  Format.fprintf ppf "@.";
  if not skip_parallel then begin
    Format.fprintf ppf "[running parallel experiment, 2 tape drives...]@.%!";
    let par2 = Experiment.run_basic ~tapes:2 cfg in
    Report.table45 ppf par2;
    Format.fprintf ppf "@.";
    Format.fprintf ppf "[running parallel experiment, 4 tape drives...]@.%!";
    let par4 = Experiment.run_basic ~tapes:4 cfg in
    Report.table45 ppf par4;
    Format.fprintf ppf "@.";
    Report.summary ppf [ basic; par2; par4 ];
    Format.fprintf ppf "@.";
    Report.scaling_chart ppf [ basic; par2; par4 ];
    Format.fprintf ppf "@."
  end;
  Format.fprintf ppf "[running concurrent-volumes experiment...]@.%!";
  let conc = Experiment.run_concurrent cfg in
  Report.concurrent ppf conc;
  Format.fprintf ppf "@.done.@."

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small volume, light churn (smoke run).")

let data_mib =
  Arg.(value & opt (some int) None & info [ "data-mib" ] ~doc:"User data per volume, MiB.")

let skip_parallel =
  Arg.(value & flag & info [ "skip-parallel" ] ~doc:"Only run the single-tape tables.")

let cmd =
  Cmd.v
    (Cmd.info "tables" ~doc:"Reproduce the paper's evaluation tables")
    Term.(const run $ quick $ data_mib $ skip_parallel)

let () = exit (Cmd.eval cmd)
