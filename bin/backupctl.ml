(* The CLI proper lives in lib/cli (Repro_cli.Cli) so tests can link it;
   this executable just runs it. *)
let () = exit (Repro_cli.Cli.run ())
